//! End-to-end acceptance: a query POSTed over real TCP returns the same
//! answer/explanation bytes as the in-process engine path; responses are
//! byte-identical across shard counts; graceful drain completes all
//! admitted requests and rejects new ones; one trace covers wire and
//! pipeline tiers.

use cyclesql_benchgen::{build_spider_suite, BenchmarkSuite, SuiteConfig, Variant};
use cyclesql_core::{CycleSql, LoopVerifier};
use cyclesql_models::{ModelProfile, SimulatedModel};
use cyclesql_net::{
    encode_query, encode_response, ApiQuery, HttpClient, NetConfig, NetServer, RouterConfig,
};
use cyclesql_nli::{Verdict, Verifier, VerifyInput};
use cyclesql_obs::{MemorySink, ObsCounters, SpanSink, Tracer};
use cyclesql_serve::{Catalog, ServeConfig, ServeRequest, ServiceEngine};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn suite() -> BenchmarkSuite {
    build_spider_suite(
        Variant::Spider,
        SuiteConfig {
            seed: 0xE2E,
            train_per_template: 1,
            eval_per_template: 2,
        },
    )
}

fn engine_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }
}

fn oracle_factory() -> impl FnMut(usize, Arc<Catalog>) -> ServiceEngine {
    |_, slice| {
        ServiceEngine::start(
            slice,
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            CycleSql::new(LoopVerifier::Oracle),
            engine_config(),
        )
    }
}

fn start_sharded(suite: &BenchmarkSuite, shards: usize) -> NetServer {
    let catalog = Catalog::from_suites([suite]);
    NetServer::start(
        "127.0.0.1:0",
        NetConfig {
            router: RouterConfig {
                shards,
                ..RouterConfig::default()
            },
            ..NetConfig::default()
        },
        &catalog,
        oracle_factory(),
        None,
    )
    .expect("bind loopback")
}

/// The tentpole acceptance: byte parity between the TCP path and the
/// in-process engine path, pinned per dev item.
#[test]
fn tcp_responses_match_the_in_process_engine_byte_for_byte() {
    let suite = suite();
    let server = start_sharded(&suite, 1);
    // The reference engine sees the same catalog and the same wire item
    // the server reconstructs from JSON.
    let catalog = Arc::new(Catalog::from_suites([&suite]));
    let reference = ServiceEngine::start(
        catalog,
        SimulatedModel::new(ModelProfile::resdsql_3b()),
        CycleSql::new(LoopVerifier::Oracle),
        engine_config(),
    );

    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    for item in suite.dev.iter().take(6) {
        let body = encode_query(item);
        let wire_item = ApiQuery::parse(body.as_bytes()).unwrap().into_item();
        let expected = encode_response(
            &reference
                .submit(ServeRequest { item: wire_item })
                .unwrap()
                .wait()
                .unwrap(),
        );
        let resp = client.request("POST", "/v1/query", Some(&body)).unwrap();
        assert_eq!(resp.status, 200, "{}", item.id);
        assert_eq!(
            resp.body_str(),
            expected,
            "{}: wire bytes diverge from the in-process path",
            item.id
        );
        assert!(resp.body_str().contains("\"explanation\""));
    }
    reference.shutdown();
}

/// Shard-count determinism: the same request set gets byte-identical
/// response bodies from a 1-shard and a 4-shard deployment.
#[test]
fn responses_are_identical_across_shard_counts() {
    let suite = suite();
    let one = start_sharded(&suite, 1);
    let four = start_sharded(&suite, 4);
    let mut c1 = HttpClient::connect(one.local_addr()).unwrap();
    let mut c4 = HttpClient::connect(four.local_addr()).unwrap();
    let mut shards_seen = std::collections::BTreeSet::new();
    for item in suite.dev.iter() {
        let body = encode_query(item);
        let r1 = c1.request("POST", "/v1/query", Some(&body)).unwrap();
        let r4 = c4.request("POST", "/v1/query", Some(&body)).unwrap();
        assert_eq!((r1.status, r4.status), (200, 200), "{}", item.id);
        assert_eq!(
            r1.body, r4.body,
            "{}: shard layout leaked into the response body",
            item.id
        );
        assert_eq!(r1.header("x-cyclesql-shard"), Some("0"));
        shards_seen.insert(r4.header("x-cyclesql-shard").unwrap().to_string());
    }
    assert!(
        shards_seen.len() > 1,
        "4-shard deployment actually spread the catalog: {shards_seen:?}"
    );
}

/// A verifier with a fixed service time, for load control.
struct SlowVerifier(Duration);

impl Verifier for SlowVerifier {
    fn verify(&self, _input: &VerifyInput<'_>) -> Verdict {
        std::thread::sleep(self.0);
        Verdict {
            entails: true,
            score: 1.0,
        }
    }
    fn name(&self) -> &'static str {
        "slow"
    }
}

/// Graceful drain under load: every admitted request completes with 200,
/// the post-drain server accepts no new connections, and nothing is
/// forced.
#[test]
fn drain_under_load_completes_admitted_requests() {
    let suite = suite();
    let catalog = Catalog::from_suites([&suite]);
    let server = NetServer::start(
        "127.0.0.1:0",
        NetConfig {
            router: RouterConfig {
                shards: 2,
                ..RouterConfig::default()
            },
            ..NetConfig::default()
        },
        &catalog,
        |_, slice| {
            ServiceEngine::start(
                slice,
                SimulatedModel::new(ModelProfile::resdsql_3b()),
                CycleSql::new(LoopVerifier::Custom(Box::new(SlowVerifier(
                    Duration::from_millis(120),
                )))),
                ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                },
            )
        },
        None,
    )
    .unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let item = suite.dev[i % suite.dev.len()].clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let body = encode_query(&item);
                client
                    .request("POST", "/v1/query", Some(&body))
                    .unwrap()
                    .status
            })
        })
        .collect();

    // Let the burst get admitted, then drain while it is in flight.
    std::thread::sleep(Duration::from_millis(60));
    let report = server.drain(Duration::from_secs(30));

    for client in clients {
        assert_eq!(
            client.join().unwrap(),
            200,
            "admitted request completed during drain"
        );
    }
    assert_eq!(report.forced_connections, 0, "no connection was cut");
    let completed: u64 = report.shard_metrics.iter().map(|(_, m)| m.completed).sum();
    assert_eq!(completed, 4, "every admitted request ran to completion");

    // The drained server accepts nothing new.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            use std::io::{Read, Write};
            let _ = s.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n");
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let mut buf = [0u8; 16];
            // Either the connect was refused outright or the socket sits
            // in the dead listener's backlog and yields no response.
            !matches!(s.read(&mut buf), Ok(n) if n > 0)
        }
    };
    assert!(refused, "post-drain server answered a new connection");
}

/// The /metrics page carries per-shard engine families (shard-labelled)
/// plus the wire-tier families, one header per family.
#[test]
fn metrics_page_reports_shards_and_wire_counters() {
    let suite = suite();
    let server = start_sharded(&suite, 2);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    for item in suite.dev.iter().take(3) {
        let body = encode_query(item);
        assert_eq!(
            client
                .request("POST", "/v1/query", Some(&body))
                .unwrap()
                .status,
            200
        );
    }
    let page = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(page.status, 200);
    assert!(page
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/plain")));
    let text = page.body_str();
    assert!(text.contains("shard=\"0\""), "shard labels present");
    assert!(text.contains("shard=\"1\""));
    assert!(text.contains("cyclesql_net_requests 4\n"), "{text}");
    assert!(text.contains("cyclesql_net_queries_ok 3\n"));
    for family in ["cyclesql_requests_admitted_total", "cyclesql_net_requests"] {
        assert_eq!(
            text.matches(&format!("# HELP {family} ")).count(),
            1,
            "{family} header appears once"
        );
    }
}

/// One trace per query: the `net` root span (remote addr, shard, queue
/// wait) with the engine's `serve` span as its child, across threads.
#[test]
fn net_root_span_wraps_the_serve_span() {
    let suite = suite();
    let catalog = Catalog::from_suites([&suite]);
    let counters = Arc::new(ObsCounters::default());
    let sink = Arc::new(MemorySink::new(4096, Arc::clone(&counters)));
    let tracer = Arc::new(Tracer::new(
        Arc::clone(&sink) as Arc<dyn SpanSink>,
        counters,
    ));
    let server = NetServer::start(
        "127.0.0.1:0",
        NetConfig::default(),
        &catalog,
        oracle_factory(),
        Some(cyclesql_net::NetObs {
            tracer,
            spans: Some(Arc::clone(&sink)),
        }),
    )
    .unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let body = encode_query(&suite.dev[0]);
    let resp = client.request("POST", "/v1/query", Some(&body)).unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    let report = server.drain(Duration::from_secs(10));
    assert_eq!(report.net.queries_ok, 1);

    let records = sink.records();
    let net = records
        .iter()
        .find(|r| r.name == "net")
        .expect("net root span recorded");
    assert!(net.parent_id.is_none(), "net is the trace root");
    assert!(net.attr("remote").is_some());
    assert!(net.attr("assemble_us").is_some());
    assert!(net.attr("shard").is_some());
    assert!(net.attr("queue_wait_us").is_some());
    assert!(
        matches!(net.attr("status"), Some(cyclesql_obs::AttrValue::Int(200))),
        "status recorded"
    );
    let serve = records
        .iter()
        .find(|r| r.name == "serve")
        .expect("serve span recorded");
    assert_eq!(
        serve.parent_id,
        Some(net.span_id),
        "engine span nests under the wire span across threads"
    );
    assert_eq!(serve.trace_id, net.trace_id, "one trace covers both tiers");
}
