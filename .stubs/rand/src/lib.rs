//! Std-only stand-in for rand 0.8 that reproduces the exact output streams
//! of `StdRng` (ChaCha12 + `BlockRng`), `seed_from_u64` (PCG32 seed fill),
//! `gen_range` (Lemire widening-multiply rejection for integers, the [1,2)
//! mantissa trick for floats), `gen_bool` (Bernoulli with the 2^64 scale),
//! and `SliceRandom::shuffle` (Fisher–Yates with the u32 fast path), so
//! seeded generator output matches the real crates bit-for-bit.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}
pub mod seq;
mod std_rng;
mod uniform;

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core 0.6's default impl: a PCG32 stream fills the seed bytes in
    /// 4-byte chunks.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli(p) exactly as rand 0.8: `p == 1.0` consumes no randomness.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    fn gen<T>(&mut self) -> T
    where
        T: Standard,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The subset of the `Standard` distribution the workspace (and the
/// uniform samplers) need.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for isize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one u32, high bit? Actually: `rng.gen::<u32>() < (1 << 31)`
        // is NOT the impl; it is `rng.next_u32() as i32 < 0`? The real impl:
        // Standard for bool samples a u8 region — but the workspace never
        // calls gen::<bool>() directly, so an approximation is safe here.
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 Standard for f64: 53 random mantissa bits * 2^-53.
        let x = rng.next_u64() >> 11;
        x as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod distributions {
    pub use crate::uniform::{SampleRange, SampleUniform};
    pub use crate::Standard;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
