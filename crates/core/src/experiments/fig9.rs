//! Figure 9: impact of feedback quality — CycleSQL's data-grounded
//! explanations vs the simpler SQL2NL back-translation as the feedback
//! channel, compared on RESDSQL-Large and GPT-3.5-Turbo across the four
//! SPIDER-family benchmarks.

use super::ExperimentContext;
use crate::cycle::FeedbackKind;
use crate::eval::{evaluate, EvalMode, EvalOptions, Parallelism};
use crate::training::{collect_training_data, CollectConfig};
use cyclesql_benchgen::Split;
use cyclesql_models::{ModelProfile, SimulatedModel};
use cyclesql_nli::{NliModel, TrainConfig, TrainedVerifier};
use serde::Serialize;
use std::fmt::Write as _;

/// Per-benchmark EX for one model under three configurations.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// Model name.
    pub model: String,
    /// Benchmark label (SPIDER / REALISTIC / SYN / DK).
    pub benchmark: String,
    /// Base EX.
    pub base_ex: f64,
    /// EX with CycleSQL (data-grounded feedback).
    pub cyclesql_ex: f64,
    /// EX with the SQL2NL feedback verifier.
    pub sql2nl_ex: f64,
}

/// The whole figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// Rows: 2 models × 4 benchmarks.
    pub rows: Vec<Fig9Row>,
}

/// Trains a verifier on SQL2NL premises (the comparison feedback channel,
/// same training protocol otherwise).
pub fn train_sql2nl_verifier(ctx: &ExperimentContext) -> TrainedVerifier {
    let error_sources = vec![
        SimulatedModel::new(ModelProfile::smbop()),
        SimulatedModel::new(ModelProfile::resdsql_large()),
        SimulatedModel::new(ModelProfile::gpt35()),
    ];
    let (examples, _) = collect_training_data(
        &ctx.spider,
        &error_sources,
        CollectConfig { feedback: FeedbackKind::Sql2Nl, ..Default::default() },
    );
    let (model, _) = NliModel::train(&examples, TrainConfig::default());
    TrainedVerifier { model }
}

/// Runs the Figure-9 comparison.
pub fn run(ctx: &ExperimentContext) -> Fig9Result {
    let cycle_grounded = ctx.cycle();
    let sql2nl_verifier = train_sql2nl_verifier(ctx);
    let cycle_sql2nl = ctx.cycle_with(sql2nl_verifier, FeedbackKind::Sql2Nl);

    let models = [
        SimulatedModel::new(ModelProfile::resdsql_large()),
        SimulatedModel::new(ModelProfile::gpt35()),
    ];
    let mut rows = Vec::new();
    for model in &models {
        for (label, session) in ctx.spider_family() {
            let eval_with = |mode: EvalMode, cycle| {
                evaluate(
                    model,
                    &EvalOptions {
                        session,
                        split: Split::Dev,
                        mode,
                        cycle,
                        k: None,
                        compute_ts: false,
                        parallelism: Parallelism::Auto,
                    },
                )
            };
            let base = eval_with(EvalMode::Base, None);
            let grounded = eval_with(EvalMode::CycleSql, Some(&cycle_grounded));
            let sql2nl = eval_with(EvalMode::CycleSql, Some(&cycle_sql2nl));
            rows.push(Fig9Row {
                model: model.profile.name.to_string(),
                benchmark: label.to_string(),
                base_ex: base.ex,
                cyclesql_ex: grounded.ex,
                sql2nl_ex: sql2nl.ex,
            });
        }
    }
    Fig9Result { rows }
}

impl Fig9Result {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 9: EX (%) with data-grounded vs SQL2NL feedback"
        );
        let _ = writeln!(
            out,
            "{:<16} {:<12} {:>8} {:>11} {:>9}",
            "model", "benchmark", "Base", "+CycleSQL", "+SQL2NL"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<12} {:>8.1} {:>11.1} {:>9.1}",
                r.model, r.benchmark, r.base_ex, r.cyclesql_ex, r.sql2nl_ex
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grounded_feedback_beats_sql2nl_on_average() {
        let ctx = ExperimentContext::shared_quick();
        let f = run(ctx);
        assert_eq!(f.rows.len(), 8);
        let avg = |pick: fn(&Fig9Row) -> f64| {
            f.rows.iter().map(pick).sum::<f64>() / f.rows.len() as f64
        };
        let grounded = avg(|r| r.cyclesql_ex);
        let sql2nl = avg(|r| r.sql2nl_ex);
        assert!(
            grounded >= sql2nl,
            "data-grounded feedback must be the stronger channel: {grounded:.1} vs {sql2nl:.1}"
        );
        // And grounded feedback never falls below base on average.
        assert!(grounded >= avg(|r| r.base_ex));
    }
}
