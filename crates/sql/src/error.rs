//! Error types for SQL parsing.

use std::fmt;

/// Errors produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string).
    Lex(String),
    /// Syntactic error (unexpected token, premature end of input).
    Parse(String),
}

impl SqlError {
    pub(crate) fn lex(msg: impl Into<String>) -> SqlError {
        SqlError::Lex(msg.into())
    }

    pub(crate) fn parse(msg: impl Into<String>) -> SqlError {
        SqlError::Parse(msg.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(msg) => write!(f, "lex error: {msg}"),
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}
