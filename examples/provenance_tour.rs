//! A tour of why-provenance tracking: shows the rewritten provenance query
//! and the captured provenance table for each query class the rewrite rules
//! handle (plain filters, aggregates, grouping, set operations, nested
//! subqueries, empty results).

use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
use cyclesql_provenance::track_provenance;
use cyclesql_sql::{parse, to_sql};
use cyclesql_storage::{execute, Database};

fn tour(db: &Database, label: &str, sql: &str) {
    println!("=== {label} ===");
    println!("original : {sql}");
    let query = parse(sql).expect("parse");
    let result = match execute(db, &query) {
        Ok(r) => r,
        Err(e) => {
            println!("execution failed: {e}\n");
            return;
        }
    };
    println!(
        "result   : {} row(s); first = {:?}",
        result.len(),
        result.rows.first().map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    );
    match track_provenance(db, &query, &result, 0) {
        Ok(prov) => {
            if prov.empty_result {
                println!("provenance: skipped (empty result — operation-level fallback)");
            } else {
                for rw in &prov.rewritten {
                    println!("rewritten: {}", to_sql(rw));
                }
                println!(
                    "provenance table: {} column(s) x {} row(s)",
                    prov.table.columns.len(),
                    prov.table.len()
                );
                println!("{}", prov.table.to_ascii());
            }
        }
        Err(e) => println!("provenance error: {e}"),
    }
    println!();
}

fn main() {
    let suite = build_spider_suite(Variant::Spider, SuiteConfig::default());
    let db = suite.databases.get("world_1").expect("world database");

    tour(db, "Rule 1: plain filtered retrieval", "SELECT name FROM country WHERE continent = 'Europe'");
    tour(
        db,
        "Rule 3: aggregate over a join (the Figure-4 rewrite)",
        "SELECT count(*) FROM countrylanguage AS T1 JOIN country AS T2 \
         ON T1.countrycode = T2.code WHERE T2.continent = 'Europe'",
    );
    tour(
        db,
        "Rules 1+3: grouped aggregate with HAVING",
        "SELECT count(T1.language), T2.name FROM countrylanguage AS T1 JOIN country AS T2 \
         ON T1.countrycode = T2.code GROUP BY T2.name HAVING count(*) >= 2",
    );
    tour(
        db,
        "Set operation: provenance unions both branches",
        "SELECT T2.name FROM countrylanguage AS T1 JOIN country AS T2 ON T1.countrycode = T2.code \
         WHERE T1.language = 'English' INTERSECT \
         SELECT T2.name FROM countrylanguage AS T1 JOIN country AS T2 ON T1.countrycode = T2.code \
         WHERE T1.language = 'French'",
    );
    tour(
        db,
        "Nested subquery kept as a constraint",
        "SELECT name FROM country WHERE code NOT IN \
         (SELECT countrycode FROM countrylanguage WHERE language = 'English')",
    );
    tour(
        db,
        "Empty result: tracking skipped",
        "SELECT name FROM country WHERE population > 999999999",
    );
}
