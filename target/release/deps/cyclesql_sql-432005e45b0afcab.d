/root/repo/target/release/deps/cyclesql_sql-432005e45b0afcab.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/canonical.rs crates/sql/src/difficulty.rs crates/sql/src/error.rs crates/sql/src/parser.rs crates/sql/src/printer.rs crates/sql/src/token.rs crates/sql/src/units.rs

/root/repo/target/release/deps/cyclesql_sql-432005e45b0afcab: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/canonical.rs crates/sql/src/difficulty.rs crates/sql/src/error.rs crates/sql/src/parser.rs crates/sql/src/printer.rs crates/sql/src/token.rs crates/sql/src/units.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/canonical.rs:
crates/sql/src/difficulty.rs:
crates/sql/src/error.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
crates/sql/src/token.rs:
crates/sql/src/units.rs:
