//! Runtime values with SQL (SQLite-flavoured) comparison semantics.

use cyclesql_sql::Literal;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A runtime cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Text.
    Str(String),
    /// Boolean (stored as its own type; compares equal to 0/1 integers).
    Bool(bool),
}

impl Value {
    /// Converts a parsed SQL literal to a runtime value.
    pub fn from_literal(l: &Literal) -> Value {
        match l {
            Literal::Int(n) => Value::Int(*n),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Null => Value::Null,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Booleans are 0/1; numeric
    /// strings parse (SQLite affinity-style).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// Truthiness for use in WHERE: NULL and unknown are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Float(x) => *x != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// SQL equality: NULL never equals anything (returns `None` = unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        })
    }

    /// SQL ordering comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering for ORDER BY and grouping: NULL < numbers < text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Bool(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    let a = self.as_f64().unwrap_or(f64::NEG_INFINITY);
                    let b = other.as_f64().unwrap_or(f64::NEG_INFINITY);
                    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
                }
            },
            other => other,
        }
    }

    /// Key used for grouping and bag-equality: collapses numeric
    /// representations (`2` and `2.0` group together, like SQLite results
    /// compared by the Spider script).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Str(s) => format!("s:{s}"),
            Value::Bool(b) => format!("n:{}", if *b { 1.0 } else { 0.0 }),
            Value::Int(n) => format!("n:{}", *n as f64),
            Value::Float(x) => format!("n:{x}"),
        }
    }

    /// The non-allocating grouping key: a hashable value whose equivalence
    /// relation is exactly [`Value::group_key`] string equality, without the
    /// `format!` per cell. Numbers (int/float/bool) collapse onto the bits of
    /// their `f64` view, so `2`, `2.0`, and `true`/`1` group as before —
    /// including the deliberate quirks: `-0.0` and `0.0` stay distinct keys,
    /// and integers beyond 2^53 collapse like their float renderings.
    pub fn key(&self) -> KeyValue {
        match self {
            Value::Null => KeyValue::Null,
            Value::Str(s) => KeyValue::Str(s.as_str().into()),
            Value::Bool(b) => KeyValue::Num((if *b { 1.0f64 } else { 0.0 }).to_bits()),
            Value::Int(n) => KeyValue::Num((*n as f64).to_bits()),
            Value::Float(x) => {
                // All NaN payloads render as the same "NaN" string key.
                let x = if x.is_nan() { f64::NAN } else { *x };
                KeyValue::Num(x.to_bits())
            }
        }
    }

    /// SQL LIKE with `%` and `_` wildcards, case-insensitive (SQLite default).
    pub fn sql_like(&self, pattern: &str) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Str(s) => Some(like_match(&s.to_lowercase(), &pattern.to_lowercase())),
            other => {
                let s = other.to_string().to_lowercase();
                Some(like_match(&s, &pattern.to_lowercase()))
            }
        }
    }
}

/// A cheap grouping/dedup key for one cell, used by GROUP BY, DISTINCT,
/// set operations, hash joins, and bag comparison. Equality and hashing
/// match [`Value::group_key`] string equality; the derived `Ord` is an
/// arbitrary (but total and deterministic) order used only for sorting
/// multisets before comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyValue {
    /// SQL NULL (groups with other NULLs).
    Null,
    /// Any numeric value, keyed by the raw bits of its `f64` view.
    Num(u64),
    /// Text, keyed verbatim.
    Str(Box<str>),
}

fn like_match(s: &str, pattern: &str) -> bool {
    // Dynamic-programming match over chars.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (n, m) = (s.len(), p.len());
    let mut dp = vec![vec![false; m + 1]; n + 1];
    dp[0][0] = true;
    for j in 1..=m {
        if p[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && s[i - 1] == c,
            };
        }
    }
    dp[n][m]
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other).unwrap_or(false),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "T" } else { "F" }),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equality_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        // But bag-comparison PartialEq treats NULL == NULL.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.0)), Some(true));
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.5)), Some(false));
        assert_eq!(Value::Bool(true).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn string_number_affinity() {
        assert_eq!(Value::Str("80000".into()).as_f64(), Some(80000.0));
        assert_eq!(
            Value::Str("80000".into()).sql_cmp(&Value::Int(70000)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn string_comparison_lexicographic() {
        assert_eq!(
            Value::Str("apple".into()).sql_cmp(&Value::Str("banana".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [Value::Str("a".into()), Value::Int(5), Value::Null];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert!(matches!(vals[1], Value::Int(5)));
        assert!(matches!(&vals[2], Value::Str(s) if s == "a"));
    }

    #[test]
    fn group_key_collapses_numeric_types() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(
            Value::Int(2).group_key(),
            Value::Str("2".into()).group_key()
        );
    }

    #[test]
    fn like_wildcards() {
        assert_eq!(
            Value::Str("Airbus A340".into()).sql_like("%a340%"),
            Some(true)
        );
        assert_eq!(Value::Str("Airbus".into()).sql_like("air_us"), Some(true));
        assert_eq!(Value::Str("Airbus".into()).sql_like("air"), Some(false));
        assert_eq!(Value::Null.sql_like("%"), None);
        assert_eq!(Value::Str("".into()).sql_like("%"), Some(true));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
    }

    #[test]
    fn key_value_matches_group_key_equivalence() {
        let samples = [
            Value::Null,
            Value::Int(0),
            Value::Int(2),
            Value::Int(-2),
            Value::Int(1),
            Value::Int(i64::MAX),
            Value::Int((1i64 << 53) + 1),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(2.0),
            Value::Float(2.5),
            Value::Float(1.0),
            Value::Float((1u64 << 53) as f64),
            Value::Bool(true),
            Value::Bool(false),
            Value::Str("2".into()),
            Value::Str("2.0".into()),
            Value::Str("".into()),
            Value::Str("abc".into()),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.key() == b.key(),
                    a.group_key() == b.group_key(),
                    "KeyValue equivalence must match group_key for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn key_value_preserves_group_key_quirks() {
        // -0.0 and 0.0 render differently in group_key, so they stay
        // distinct keys; Int/Float/Bool collapse numerically.
        assert_ne!(Value::Float(-0.0).key(), Value::Float(0.0).key());
        assert_eq!(Value::Int(0).key(), Value::Float(0.0).key());
        assert_eq!(Value::Bool(true).key(), Value::Int(1).key());
        // Integers beyond 2^53 collapse onto their f64 image, exactly like
        // the string key (`format!("n:{}", n as f64)`).
        let big = (1i64 << 53) + 1;
        assert_eq!(Value::Int(big).key(), Value::Int(1i64 << 53).key());
        assert_eq!(
            Value::Int(big).group_key(),
            Value::Int(1i64 << 53).group_key()
        );
        // Strings never collapse with numbers.
        assert_ne!(Value::Str("2".into()).key(), Value::Int(2).key());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(4.0).to_string(), "4");
        assert_eq!(Value::Float(4.5).to_string(), "4.5");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
