//! Prepared-query evaluation sessions.
//!
//! Every layer of the evaluation stack used to pass SQL around as strings,
//! so one Table-I style pass re-parsed each item's gold query and re-executed
//! it on the dev database and on every TS variant once *per candidate, per
//! model, per mode*. An [`EvalSession`] hoists all of that gold-side work out
//! of the loops: built once per benchmark suite, it owns a [`PreparedItem`]
//! per item holding
//!
//! - the gold AST, parsed once (`Arc<Query>`),
//! - the gold canonical form for EM, computed once ([`CanonicalSql`]),
//! - the gold result on the item's database, executed once (`Arc<ResultSet>`),
//! - and the gold result on each TS variant, executed lazily once and
//!   memoized per `(item, seed)` behind a `OnceLock`.
//!
//! TS variant databases themselves are shared through the session's
//! [`VariantCache`] (keyed by `(db_name, seed)`, handles cloned out of the
//! lock), so parallel evaluation workers never serialize on query execution.
//!
//! The session derefs to its [`BenchmarkSuite`], so existing call sites that
//! only need items or databases keep working unchanged.

use crate::metrics::{VariantCache, TS_VARIANTS};
use cyclesql_benchgen::{BenchmarkItem, BenchmarkSuite, Split};
use cyclesql_models::PreparedGold;
use cyclesql_sql::{parse, CanonicalSql, Query};
use cyclesql_storage::{compile, CompiledQuery, Database, ResultSet};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Per-item gold artifacts, computed once when the session is built.
#[derive(Debug)]
pub struct PreparedItem {
    /// The parsed gold query; `None` if the gold does not parse.
    pub gold_ast: Option<Arc<Query>>,
    /// The gold canonical form for EM comparison.
    pub gold_canonical: Option<CanonicalSql>,
    /// The gold query compiled once against the item's database schema;
    /// `None` if parsing or compilation failed. Reused for every execution
    /// of the gold — on the dev database and on each TS variant (which
    /// share the schema the plan was bound against).
    pub gold_compiled: Option<Arc<CompiledQuery>>,
    /// The gold result on the item's database; `None` if parsing or
    /// execution failed.
    pub gold_result: Option<Arc<ResultSet>>,
    /// Memoized gold results on the TS variants, indexed by `seed - 1`.
    variant_gold: [OnceLock<VariantGoldState>; TS_VARIANTS as usize],
}

/// The memoized state of one `(item, variant-seed)` gold execution.
#[derive(Debug, Clone)]
enum VariantGoldState {
    /// The suite has no variant generator for this database.
    Missing,
    /// The variant exists; the gold's result on it (`None` = failed).
    Result(Option<Arc<ResultSet>>),
}

impl PreparedItem {
    fn prepare(item: &BenchmarkItem, db: &Database) -> Self {
        let gold_ast = parse(&item.gold_sql).ok().map(Arc::new);
        let gold_canonical = gold_ast.as_deref().map(CanonicalSql::of);
        let gold_compiled = gold_ast
            .as_deref()
            .and_then(|q| compile(db, q).ok())
            .map(Arc::new);
        let gold_result = gold_compiled
            .as_deref()
            .and_then(|c| c.run_result(db).ok())
            .map(Arc::new);
        PreparedItem {
            gold_ast,
            gold_canonical,
            gold_compiled,
            gold_result,
            variant_gold: Default::default(),
        }
    }

    /// The gold artifacts in the form the model simulators consume, or
    /// `None` when the gold does not parse.
    pub fn as_prepared_gold(&self) -> Option<PreparedGold> {
        self.gold_ast.as_ref().map(|ast| PreparedGold {
            ast: Arc::clone(ast),
            result: self.gold_result.clone(),
        })
    }
}

/// A benchmark suite with all gold-side artifacts prepared.
///
/// Build one per suite ([`EvalSession::new`]) and share it (`&EvalSession` is
/// `Sync`) across models, modes, and evaluation worker threads: the gold
/// parse and every gold execution then happen exactly once per
/// `(benchmark, item)` no matter how many passes consume them.
//
// Field names deliberately avoid the suite's `train`/`dev`/`test` so
// `session.dev` keeps resolving through `Deref` at external call sites.
pub struct EvalSession {
    suite: BenchmarkSuite,
    variants: VariantCache,
    prep_train: Vec<PreparedItem>,
    prep_dev: Vec<PreparedItem>,
    prep_test: Vec<PreparedItem>,
}

impl Deref for EvalSession {
    type Target = BenchmarkSuite;

    fn deref(&self) -> &BenchmarkSuite {
        &self.suite
    }
}

impl EvalSession {
    /// Prepares every item of every split of `suite`.
    pub fn new(suite: BenchmarkSuite) -> Self {
        let prep = |items: &[BenchmarkItem]| {
            items
                .iter()
                .map(|item| {
                    let db = suite.database(item);
                    PreparedItem::prepare(item, db)
                })
                .collect()
        };
        let prep_train = prep(&suite.train);
        let prep_dev = prep(&suite.dev);
        let prep_test = prep(&suite.test);
        EvalSession {
            suite,
            variants: VariantCache::new(),
            prep_train,
            prep_dev,
            prep_test,
        }
    }

    /// The underlying suite.
    pub fn suite(&self) -> &BenchmarkSuite {
        &self.suite
    }

    /// The session's shared TS-variant cache.
    pub fn variant_cache(&self) -> &VariantCache {
        &self.variants
    }

    /// Prepared items of a split, index-aligned with
    /// [`BenchmarkSuite::split`].
    pub fn prepared(&self, split: Split) -> &[PreparedItem] {
        match split {
            Split::Train => &self.prep_train,
            Split::Dev => &self.prep_dev,
            Split::Test => &self.prep_test,
        }
    }

    /// The prepared item at `idx` of `split`.
    pub fn prepared_item(&self, split: Split, idx: usize) -> &PreparedItem {
        &self.prepared(split)[idx]
    }

    /// A shared handle to the `(db_name, seed)` TS variant, if the suite can
    /// generate one.
    pub fn variant_db(&self, db_name: &str, seed: u64) -> Option<Arc<Database>> {
        self.variants.variant_arc(&self.suite, db_name, seed)
    }

    /// The gold result of `(split, idx)` on TS variant `seed`, executed once
    /// and memoized. The outer `Option` is `None` when the suite has no
    /// variant generator for the item's database; the inner one is `None`
    /// when the gold fails on the variant.
    #[allow(clippy::option_option)]
    pub fn gold_on_variant(
        &self,
        split: Split,
        idx: usize,
        seed: u64,
    ) -> Option<Option<Arc<ResultSet>>> {
        debug_assert!((1..=TS_VARIANTS).contains(&seed));
        let item = &self.suite.split(split)[idx];
        let prep = &self.prepared(split)[idx];
        let state = prep.variant_gold[(seed - 1) as usize].get_or_init(|| {
            match self.variant_db(&item.db_name, seed) {
                None => VariantGoldState::Missing,
                Some(db) => VariantGoldState::Result(
                    prep.gold_compiled
                        .as_deref()
                        .and_then(|c| c.run_result(&db).ok())
                        .map(Arc::new),
                ),
            }
        });
        match state {
            VariantGoldState::Missing => None,
            VariantGoldState::Result(r) => Some(r.clone()),
        }
    }

    /// Test-suite accuracy for a prepared prediction — the same decision
    /// procedure as [`crate::metrics::ts_correct`], but every gold-side
    /// parse/execution comes from the session's caches and only the
    /// prediction is executed per call.
    ///
    /// `pred_dev_result` is the prediction's (already computed) result on
    /// the item's own database; `None` means it failed to parse or execute.
    pub fn ts_prepared(
        &self,
        split: Split,
        idx: usize,
        pred_ast: Option<&Query>,
        pred_dev_result: Option<&ResultSet>,
    ) -> bool {
        let prep = &self.prepared(split)[idx];
        // EX gate: prediction and gold must both succeed and agree on dev.
        let ex = match (&prep.gold_result, pred_dev_result) {
            (Some(g), Some(p)) => p.bag_eq(g),
            _ => false,
        };
        if !ex {
            return false;
        }
        let item = &self.suite.split(split)[idx];
        // Compile the prediction once against the item's database (same
        // schema as every variant); each seed below only re-runs the plan.
        let pred_compiled = pred_ast.and_then(|q| compile(self.suite.database(item), q).ok());
        for seed in 1..=TS_VARIANTS {
            let Some(gold_v) = self.gold_on_variant(split, idx, seed) else {
                // No variant generator for this db: fall back to EX.
                return true;
            };
            let db = self
                .variant_db(&item.db_name, seed)
                .expect("variant exists when gold_on_variant returned Some");
            let pred_v = pred_compiled.as_ref().and_then(|c| c.run_result(&db).ok());
            match (pred_v, gold_v) {
                (Some(p), Some(g)) => {
                    if !p.bag_eq(&g) {
                        return false;
                    }
                }
                (None, None) => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{em_correct, ex_correct, ts_correct};
    use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
    use cyclesql_sql::to_sql;
    use cyclesql_storage::execute;

    fn session() -> EvalSession {
        EvalSession::new(build_spider_suite(
            Variant::Spider,
            SuiteConfig {
                seed: 0xABCD,
                train_per_template: 1,
                eval_per_template: 1,
            },
        ))
    }

    #[test]
    fn prepared_items_align_with_splits() {
        let s = session();
        for split in [Split::Train, Split::Dev, Split::Test] {
            assert_eq!(s.prepared(split).len(), s.suite().split(split).len());
        }
        // Every generated gold parses and executes, so all artifacts exist.
        for prep in s.prepared(Split::Dev) {
            assert!(prep.gold_ast.is_some());
            assert!(prep.gold_canonical.is_some());
            assert!(prep.gold_result.is_some());
        }
    }

    #[test]
    fn session_derefs_to_suite() {
        let s = session();
        assert!(!s.suite().dev.is_empty());
        let item = &s.suite().dev[0];
        // Both accessors resolve through the suite via Deref.
        assert_eq!(s.database(item).schema.name, item.db_name);
        assert_eq!(s.database_arc(item).schema.name, item.db_name);
    }

    #[test]
    fn prepared_gold_matches_direct_parse_and_execute() {
        let s = session();
        for (idx, item) in s.suite().dev.iter().enumerate() {
            let prep = s.prepared_item(Split::Dev, idx);
            let db = s.database(item);
            let q = parse(&item.gold_sql).unwrap();
            assert_eq!(to_sql(prep.gold_ast.as_deref().unwrap()), to_sql(&q));
            assert_eq!(
                prep.gold_canonical.as_ref().unwrap().as_str(),
                CanonicalSql::of(&q).as_str()
            );
            let direct = execute(db, &q).unwrap();
            assert!(prep.gold_result.as_deref().unwrap().bag_eq(&direct));
        }
    }

    #[test]
    fn ts_prepared_agrees_with_string_path() {
        let s = session();
        // Probe predictions: the gold itself, a syntactically different but
        // equivalent form, a wrong query, and garbage.
        for (idx, item) in s.suite().dev.iter().enumerate().take(25) {
            let db = s.database(item);
            let gold = &item.gold_sql;
            let wrong = "SELECT count(*) FROM nosuchtable";
            for pred in [gold.as_str(), wrong, "NOT SQL AT ALL"] {
                let string_path =
                    ts_correct(s.suite(), s.variant_cache(), db, &item.db_name, pred, gold);
                let pred_ast = parse(pred).ok();
                let pred_result = pred_ast.as_ref().and_then(|q| execute(db, q).ok());
                let prepared_path =
                    s.ts_prepared(Split::Dev, idx, pred_ast.as_ref(), pred_result.as_ref());
                assert_eq!(string_path, prepared_path, "{}: {pred}", item.id);
            }
        }
    }

    #[test]
    fn em_via_canonical_agrees_with_string_path() {
        let s = session();
        for (idx, item) in s.suite().dev.iter().enumerate().take(25) {
            let prep = s.prepared_item(Split::Dev, idx);
            for pred in [item.gold_sql.as_str(), "SELECT count(*) FROM country"] {
                let string_path = em_correct(pred, &item.gold_sql);
                let prepared_path = parse(pred).ok().map(|q| CanonicalSql::of(&q)).as_ref()
                    == prep.gold_canonical.as_ref();
                assert_eq!(string_path, prepared_path, "{}: {pred}", item.id);
            }
        }
    }

    #[test]
    fn variant_gold_is_memoized() {
        let s = session();
        let a = s.gold_on_variant(Split::Dev, 0, 1);
        let b = s.gold_on_variant(Split::Dev, 0, 1);
        match (a, b) {
            (Some(Some(x)), Some(Some(y))) => assert!(Arc::ptr_eq(&x, &y)),
            (x, y) => assert_eq!(x.is_some(), y.is_some()),
        }
        // EX-style sanity: gold on dev agrees with itself.
        let item = &s.suite().dev[0];
        assert!(ex_correct(s.database(item), &item.gold_sql, &item.gold_sql));
    }
}
