//! Figure 1: translation accuracy on the SPIDER dev split vs beam size
//! (or chat-completion count), matching any beam result.

use super::ExperimentContext;
use crate::eval::any_beam_accuracy;
use cyclesql_benchgen::Split;
use cyclesql_models::{ModelProfile, SimulatedModel};
use serde::Serialize;
use std::fmt::Write as _;

/// The beam widths swept by the figure.
pub const BEAM_SIZES: [usize; 7] = [1, 2, 3, 4, 5, 8, 16];

/// One model's accuracy-vs-beam curve.
#[derive(Debug, Clone, Serialize)]
pub struct BeamCurve {
    /// Model name.
    pub model: String,
    /// `(beam size, any-beam EX %)` points.
    pub points: Vec<(usize, f64)>,
}

/// Figure 1's full data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// One curve per plotted model.
    pub curves: Vec<BeamCurve>,
}

/// Runs the Figure-1 sweep: the paper plots PICARD, RESDSQL, GPT-3.5-Turbo
/// and DAIL-SQL.
pub fn run(ctx: &ExperimentContext) -> Fig1Result {
    let models = [
        ModelProfile::picard(),
        ModelProfile::resdsql_3b(),
        ModelProfile::gpt35(),
        ModelProfile::dailsql(),
    ];
    let curves = models
        .into_iter()
        .map(|profile| {
            let model = SimulatedModel::new(profile);
            let points = BEAM_SIZES
                .iter()
                .map(|&k| (k, any_beam_accuracy(&model, &ctx.spider, Split::Dev, k)))
                .collect();
            BeamCurve { model: model.profile.name.to_string(), points }
        })
        .collect();
    Fig1Result { curves }
}

impl Fig1Result {
    /// Plain-text rendering of the figure data.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 1: any-beam execution accuracy (%) on SPIDER dev vs beam size"
        );
        let _ = write!(out, "{:<16}", "model \\ k");
        for k in BEAM_SIZES {
            let _ = write!(out, "{k:>8}");
        }
        let _ = writeln!(out);
        for c in &self.curves {
            let _ = write!(out, "{:<16}", c.model);
            for (_, acc) in &c.points {
                let _ = write!(out, "{acc:>8.1}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_nondecreasing() {
        let ctx = ExperimentContext::shared_quick();
        let result = run(ctx);
        assert_eq!(result.curves.len(), 4);
        for c in &result.curves {
            for w in c.points.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 - 1e-9,
                    "{}: accuracy dropped with wider beam: {:?}",
                    c.model,
                    c.points
                );
            }
            // The paper's plateau: beam-1 accuracy below the widest beam.
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(last >= first, "{}", c.model);
        }
    }

    #[test]
    fn render_includes_all_models() {
        let ctx = ExperimentContext::shared_quick();
        let text = run(ctx).render();
        for name in ["PICARD_3B", "RESDSQL_3B", "GPT-3.5-Turbo", "DAILSQL_3.5"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
