//! Throughput benchmark for the storage engine's execution paths.
//!
//! Runs every gold query of the generated Spider and Science suites through
//! the retained tree-walking interpreter (`cyclesql_storage::reference`),
//! the compiled row-at-a-time engine (`CompiledQuery::run_rowwise`), and the
//! compiled columnar batch engine (`CompiledQuery::run`, the default path),
//! and writes per-query-class throughput to `BENCH_storage.json`.
//!
//! The compiled paths are timed the way callers are expected to use them —
//! compilation hoisted out of the hot loop, one run per iteration (lineage
//! tracking enabled on every path, so the comparison is like-for-like).
//! Compile cost is reported separately. `speedup` is the row engine over
//! the reference interpreter; `columnar_speedup` is the columnar engine
//! over the row engine, i.e. what vectorization itself buys.
//!
//! `--threads N` additionally times the columnar engine with an N-wide
//! morsel pool; `--threads sweep` times every width in {2, 4, 8}.
//! `parallel_speedup` is single-threaded columnar over the widest timed
//! pool — what intra-query parallelism buys on this host (`host_threads`
//! records how many cores were actually available; on a single-core host
//! the honest expectation is ~1×, minus pool overhead).
//!
//! Numbers from this bench only compare across runs on comparable hosts,
//! so `host_threads` is recorded in the artifact and checked before
//! overwriting: a run on fewer cores than the existing artifact was
//! produced with refuses to clobber it unless `--force` is passed.
//!
//! Usage: `storage_bench [--iters N] [--out PATH] [--quick] [--engine row|columnar|reference|all] [--threads N|sweep] [--force]`

use cyclesql_benchgen::{build_science_suite, build_spider_suite, Split, SuiteConfig, Variant};
use cyclesql_sql::{parse, Expr, JoinType, Query, QueryBody};
use cyclesql_storage::{compile, reference, Database, ExecOpts};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Query classes, coarsest structural feature first: a CTE prologue
/// trumps a set operation trumps a subquery trumps a CASE mapping trumps
/// grouping trumps an outer join trumps an inner join.
fn classify(q: &Query) -> &'static str {
    if !q.ctes.is_empty() {
        return "cte";
    }
    if matches!(q.body, QueryBody::SetOp { .. }) {
        return "setop";
    }
    if has_subquery(q) {
        return "subquery";
    }
    if has_case(q) {
        return "case";
    }
    if q.uses_aggregate() {
        return "grouped";
    }
    let cores = q.body.select_cores();
    if cores
        .iter()
        .any(|c| c.from.joins.iter().any(|j| j.join_type != JoinType::Inner))
    {
        return "outer_join";
    }
    let joins = cores.iter().map(|c| c.from.joins.len()).sum::<usize>();
    if joins > 0 {
        return "join";
    }
    "scan"
}

fn has_case(q: &Query) -> bool {
    q.body.select_cores().iter().any(|core| {
        let mut found = false;
        let mut scan = |e: &Expr| {
            e.visit(&mut |x| {
                if matches!(x, Expr::Case { .. }) {
                    found = true;
                }
            })
        };
        for p in &core.projections {
            if let cyclesql_sql::SelectItem::Expr { expr, .. } = p {
                scan(expr);
            }
        }
        if let Some(w) = &core.where_clause {
            scan(w);
        }
        if let Some(h) = &core.having {
            scan(h);
        }
        found
    })
}

fn has_subquery(q: &Query) -> bool {
    q.body.select_cores().iter().any(|core| {
        let mut found = false;
        let mut scan = |e: &Expr| {
            e.visit(&mut |x| {
                if matches!(
                    x,
                    Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)
                ) {
                    found = true;
                }
            })
        };
        if let Some(w) = &core.where_clause {
            scan(w);
        }
        if let Some(h) = &core.having {
            scan(h);
        }
        found
    })
}

#[derive(Default)]
struct ClassAccum {
    queries: usize,
    reference_secs: f64,
    row_secs: f64,
    columnar_secs: f64,
    /// Seconds per timed morsel-pool width (keyed by thread count).
    parallel_secs: BTreeMap<usize, f64>,
    compile_secs: f64,
}

#[derive(Serialize)]
struct ClassReport {
    queries: usize,
    iters: usize,
    reference_qps: f64,
    row_qps: f64,
    columnar_qps: f64,
    /// Row engine vs the reference interpreter (compile-once win).
    speedup: f64,
    /// Columnar engine vs the row engine (vectorization win).
    columnar_speedup: f64,
    /// Columnar throughput per timed morsel-pool width (key = threads).
    #[serde(skip_serializing_if = "BTreeMap::is_empty")]
    parallel_qps: BTreeMap<String, f64>,
    /// Single-threaded columnar vs the widest timed pool (the intra-query
    /// parallelism win on this host).
    #[serde(skip_serializing_if = "Option::is_none")]
    parallel_speedup: Option<f64>,
    compile_ms_total: f64,
}

#[derive(Serialize)]
struct Report {
    suite_queries: usize,
    iters_per_query: usize,
    engines: Vec<String>,
    /// Morsel-pool widths timed by `--threads` (empty without the flag).
    threads: Vec<usize>,
    /// Cores actually available to this run — the ceiling on any
    /// honest `parallel_speedup`.
    host_threads: usize,
    classes: BTreeMap<String, ClassReport>,
    overall_reference_qps: f64,
    overall_row_qps: f64,
    overall_columnar_qps: f64,
    overall_speedup: f64,
    overall_columnar_speedup: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    overall_parallel_speedup: Option<f64>,
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 && num > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// The `host_threads` value recorded in an existing artifact, if the file
/// exists and carries one. A targeted scan, not a full parse — the guard
/// must work even if the report schema around it has drifted.
fn recorded_host_threads(path: &str) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find("\"host_threads\"")?;
    let rest = text[at..].split_once(':')?.1;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn main() {
    let mut iters: usize = 25;
    let mut out = String::from("BENCH_storage.json");
    let mut quick = false;
    let mut engines: Vec<&'static str> = vec!["reference", "row", "columnar"];
    let mut thread_widths: Vec<usize> = Vec::new();
    let mut force = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args.next().and_then(|v| v.parse().ok()).expect("--iters N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            "--quick" => quick = true,
            "--threads" => {
                let v = args.next().expect("--threads N|sweep");
                thread_widths = match v.as_str() {
                    "sweep" => vec![2, 4, 8],
                    n => vec![n.parse().expect("--threads N|sweep")],
                };
                thread_widths.retain(|&t| t > 1);
            }
            "--engine" => {
                let v = args.next().expect("--engine row|columnar|reference|all");
                engines = match v.as_str() {
                    "all" => vec!["reference", "row", "columnar"],
                    "reference" => vec!["reference"],
                    "row" => vec!["row"],
                    "columnar" => vec!["columnar"],
                    other => panic!("unknown engine: {other} (want row|columnar|reference|all)"),
                };
            }
            "--force" => force = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if quick {
        iters = iters.min(3);
    }

    // Throughput numbers from different core counts are not comparable;
    // don't silently replace a beefier host's artifact with this run's.
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("host_threads: {host_threads}");
    if let Some(recorded) = recorded_host_threads(&out) {
        if recorded > host_threads && !force {
            eprintln!(
                "storage_bench: {out} was produced on {recorded} threads but this host has \
                 {host_threads}; refusing to overwrite a multi-core artifact with a weaker run \
                 (pass --force to do it anyway)"
            );
            std::process::exit(1);
        }
    }

    let config = if quick {
        SuiteConfig {
            seed: 0xBE9C4,
            train_per_template: 1,
            eval_per_template: 1,
        }
    } else {
        SuiteConfig {
            seed: 0xBE9C4,
            ..SuiteConfig::default()
        }
    };
    let suites = [
        build_spider_suite(Variant::Spider, config),
        build_science_suite(config),
    ];

    // (class, db, parsed gold) for every item of every split of both suites.
    let mut workload: Vec<(&'static str, &Database, Query)> = Vec::new();
    for suite in &suites {
        for split in [Split::Train, Split::Dev, Split::Test] {
            for item in suite.split(split) {
                let q = parse(&item.gold_sql).expect("generated gold parses");
                workload.push((classify(&q), suite.database(item), q));
            }
        }
    }

    // Columnar shadows are a load-time cost in serving; build them up
    // front here too so the timed region measures steady-state execution.
    for suite in &suites {
        for db in suite.databases.values() {
            db.precompute_columnar();
        }
    }

    let runs = |e: &str| engines.contains(&e);
    let mut accum: BTreeMap<&'static str, ClassAccum> = BTreeMap::new();
    for (class, db, q) in &workload {
        let acc = accum.entry(class).or_default();
        acc.queries += 1;

        let t0 = Instant::now();
        let compiled = compile(db, q).expect("generated gold compiles");
        acc.compile_secs += t0.elapsed().as_secs_f64();

        // Sanity: all three paths must agree before we time anything.
        let ref_out = reference::execute_with_lineage(db, q).expect("reference executes");
        for (engine, out) in [
            ("row", compiled.run_rowwise(db).expect("row engine runs")),
            ("columnar", compiled.run(db).expect("columnar engine runs")),
        ] {
            assert!(
                ref_out.result.bag_eq(&out.result),
                "{engine} diverges on: {}",
                cyclesql_sql::to_sql(q)
            );
        }

        if runs("reference") {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(reference::execute_with_lineage(db, q).unwrap());
            }
            acc.reference_secs += t0.elapsed().as_secs_f64();
        }

        if runs("row") {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(compiled.run_rowwise(db).unwrap());
            }
            acc.row_secs += t0.elapsed().as_secs_f64();
        }

        if runs("columnar") {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(compiled.run(db).unwrap());
            }
            acc.columnar_secs += t0.elapsed().as_secs_f64();
        }

        for &threads in &thread_widths {
            let opts = ExecOpts {
                threads,
                ..ExecOpts::default()
            };
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(compiled.run_opts(db, &opts).unwrap());
            }
            *acc.parallel_secs.entry(threads).or_default() += t0.elapsed().as_secs_f64();
        }
    }

    let qps = |queries: usize, secs: f64| {
        if secs > 0.0 {
            (queries * iters) as f64 / secs
        } else {
            0.0
        }
    };
    // The headline `parallel_speedup` compares against the widest pool.
    let widest = thread_widths.iter().copied().max();
    let mut classes = BTreeMap::new();
    let (mut tot_q, mut tot_ref, mut tot_row, mut tot_col) = (0usize, 0.0f64, 0.0f64, 0.0f64);
    let mut tot_par = 0.0f64;
    for (class, acc) in &accum {
        tot_q += acc.queries;
        tot_ref += acc.reference_secs;
        tot_row += acc.row_secs;
        tot_col += acc.columnar_secs;
        let widest_secs = widest.map(|t| acc.parallel_secs[&t]);
        tot_par += widest_secs.unwrap_or(0.0);
        classes.insert(
            class.to_string(),
            ClassReport {
                queries: acc.queries,
                iters,
                reference_qps: qps(acc.queries, acc.reference_secs),
                row_qps: qps(acc.queries, acc.row_secs),
                columnar_qps: qps(acc.queries, acc.columnar_secs),
                speedup: ratio(acc.reference_secs, acc.row_secs),
                columnar_speedup: ratio(acc.row_secs, acc.columnar_secs),
                parallel_qps: acc
                    .parallel_secs
                    .iter()
                    .map(|(&t, &secs)| (t.to_string(), qps(acc.queries, secs)))
                    .collect(),
                parallel_speedup: widest_secs.map(|secs| ratio(acc.columnar_secs, secs)),
                compile_ms_total: acc.compile_secs * 1e3,
            },
        );
    }
    let report = Report {
        suite_queries: tot_q,
        iters_per_query: iters,
        engines: engines.iter().map(|e| e.to_string()).collect(),
        threads: thread_widths.clone(),
        host_threads,
        classes,
        overall_reference_qps: qps(tot_q, tot_ref),
        overall_row_qps: qps(tot_q, tot_row),
        overall_columnar_qps: qps(tot_q, tot_col),
        overall_speedup: ratio(tot_ref, tot_row),
        overall_columnar_speedup: ratio(tot_row, tot_col),
        overall_parallel_speedup: widest.map(|_| ratio(tot_col, tot_par)),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out}");
}
