/root/repo/target/release/deps/cyclesql_storage-a467697ae96dccca.d: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/compile.rs crates/storage/src/error.rs crates/storage/src/exec.rs crates/storage/src/ir.rs crates/storage/src/plan.rs crates/storage/src/profile.rs crates/storage/src/reference.rs crates/storage/src/result.rs crates/storage/src/run.rs crates/storage/src/scalar.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libcyclesql_storage-a467697ae96dccca.rlib: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/compile.rs crates/storage/src/error.rs crates/storage/src/exec.rs crates/storage/src/ir.rs crates/storage/src/plan.rs crates/storage/src/profile.rs crates/storage/src/reference.rs crates/storage/src/result.rs crates/storage/src/run.rs crates/storage/src/scalar.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libcyclesql_storage-a467697ae96dccca.rmeta: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/compile.rs crates/storage/src/error.rs crates/storage/src/exec.rs crates/storage/src/ir.rs crates/storage/src/plan.rs crates/storage/src/profile.rs crates/storage/src/reference.rs crates/storage/src/result.rs crates/storage/src/run.rs crates/storage/src/scalar.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/batch.rs:
crates/storage/src/compile.rs:
crates/storage/src/error.rs:
crates/storage/src/exec.rs:
crates/storage/src/ir.rs:
crates/storage/src/plan.rs:
crates/storage/src/profile.rs:
crates/storage/src/reference.rs:
crates/storage/src/result.rs:
crates/storage/src/run.rs:
crates/storage/src/scalar.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
