//! Error operators: realistic AST-level corruptions of a gold query.
//!
//! Simulated translation models build their incorrect beam candidates by
//! applying these operators — the error taxonomy mirrors what real NL2SQL
//! models get wrong: aggregate confusion (the paper's Figure 2), relaxed
//! comparison operators (the error-analysis `>=` vs `=` case), wrong join
//! keys (`friend_id` vs `student_id`), wrong columns, perturbed literals,
//! dropped predicates, flipped negations/orderings, and swapped set ops.

use cyclesql_sql::{
    AggFunc, BinOp, Expr, FuncArg, JoinType, Literal, Query, QueryBody, SelectItem, SetOp,
};
use cyclesql_storage::Database;
use rand::rngs::StdRng;
use rand::Rng;

/// The catalogue of error operators, in a stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorOp {
    /// Swap the aggregate function (`count` → `max` …).
    WrongAggregate,
    /// Replace a plain projection with `count(*)` (the Figure-2 error).
    PlainToCount,
    /// Replace an aggregate projection with its argument column.
    CountToPlain,
    /// Relax or tighten a comparison (`=` → `>=` …).
    RelaxComparison,
    /// Replace a filtered column with a sibling column of the same table.
    WrongColumn,
    /// Perturb a literal (another value from the column, or a scaled number).
    WrongValue,
    /// Drop one WHERE conjunct.
    DropConjunct,
    /// Toggle DISTINCT.
    ToggleDistinct,
    /// Flip the ORDER BY direction.
    FlipOrder,
    /// Change the LIMIT.
    ChangeLimit,
    /// Swap the set operator (INTERSECT → UNION …).
    SwapSetOp,
    /// Use the wrong join key column (same table, different column).
    WrongJoinKey,
    /// Flip IN / NOT IN.
    FlipNegation,
    /// Change the HAVING bound.
    ChangeHavingBound,
    /// Use the wrong join flavor (INNER ↔ LEFT, RIGHT ↔ FULL) — the
    /// retained-rows confusion outer joins invite.
    WrongJoinFlavor,
    /// Scramble a CASE expression: swap the first two WHEN branches, or a
    /// lone branch's THEN with the ELSE.
    WrongCaseBranch,
    /// Drop the WHERE filter inside a `WITH` body, over-widening the
    /// intermediate table the rest of the query reads.
    DropCteFilter,
}

impl ErrorOp {
    /// All operators.
    pub const ALL: [ErrorOp; 17] = [
        ErrorOp::WrongAggregate,
        ErrorOp::PlainToCount,
        ErrorOp::CountToPlain,
        ErrorOp::RelaxComparison,
        ErrorOp::WrongColumn,
        ErrorOp::WrongValue,
        ErrorOp::DropConjunct,
        ErrorOp::ToggleDistinct,
        ErrorOp::FlipOrder,
        ErrorOp::ChangeLimit,
        ErrorOp::SwapSetOp,
        ErrorOp::WrongJoinKey,
        ErrorOp::FlipNegation,
        ErrorOp::ChangeHavingBound,
        ErrorOp::WrongJoinFlavor,
        ErrorOp::WrongCaseBranch,
        ErrorOp::DropCteFilter,
    ];
}

/// Applies `op` to a copy of `query`; returns `None` when inapplicable.
pub fn apply_error_op(
    op: ErrorOp,
    query: &Query,
    db: &Database,
    rng: &mut StdRng,
) -> Option<Query> {
    let mut q = query.clone();
    let applied = match op {
        ErrorOp::WrongAggregate => wrong_aggregate(&mut q, rng),
        ErrorOp::PlainToCount => plain_to_count(&mut q),
        ErrorOp::CountToPlain => count_to_plain(&mut q, db),
        ErrorOp::RelaxComparison => relax_comparison(&mut q, rng),
        ErrorOp::WrongColumn => wrong_column(&mut q, db, rng),
        ErrorOp::WrongValue => wrong_value(&mut q, db, rng),
        ErrorOp::DropConjunct => drop_conjunct(&mut q, rng),
        ErrorOp::ToggleDistinct => {
            let core = q.leading_select_mut();
            core.distinct = !core.distinct;
            true
        }
        ErrorOp::FlipOrder => {
            if q.order_by.is_empty() {
                false
            } else {
                q.order_by[0].order = q.order_by[0].order.reversed();
                true
            }
        }
        ErrorOp::ChangeLimit => match q.limit {
            Some(n) => {
                q.limit = Some(if n == 1 { 3 } else { 1 });
                true
            }
            None => false,
        },
        ErrorOp::SwapSetOp => swap_set_op(&mut q.body),
        ErrorOp::WrongJoinKey => wrong_join_key(&mut q, db, rng),
        ErrorOp::FlipNegation => flip_negation(&mut q),
        ErrorOp::ChangeHavingBound => change_having_bound(&mut q),
        ErrorOp::WrongJoinFlavor => wrong_join_flavor(&mut q),
        ErrorOp::WrongCaseBranch => wrong_case_branch(&mut q),
        ErrorOp::DropCteFilter => drop_cte_filter(&mut q),
    };
    applied.then_some(q)
}

/// Applies a random applicable error operator (tries up to eight draws).
pub fn apply_random_error(query: &Query, db: &Database, rng: &mut StdRng) -> Option<Query> {
    for _ in 0..24 {
        let op = ErrorOp::ALL[rng.gen_range(0..ErrorOp::ALL.len())];
        if let Some(q) = apply_error_op(op, query, db, rng) {
            return Some(q);
        }
    }
    None
}

fn wrong_aggregate(q: &mut Query, rng: &mut StdRng) -> bool {
    let core = q.leading_select_mut();
    for item in &mut core.projections {
        if let SelectItem::Expr { expr: Expr::Agg { func, arg, .. }, .. } = item {
            let others: Vec<AggFunc> = AggFunc::ALL
                .into_iter()
                .filter(|f| f != func && !(matches!(arg, FuncArg::Star) && *f != AggFunc::Count))
                .collect();
            if matches!(arg, FuncArg::Star) {
                // count(*) can only become an aggregate over a column; skip
                // here — PlainToCount/CountToPlain cover that direction.
                continue;
            }
            if let Some(&new) = others.first() {
                let pick = others[rng.gen_range(0..others.len())];
                *func = if rng.gen_bool(0.5) { pick } else { new };
                return true;
            }
        }
    }
    false
}

fn plain_to_count(q: &mut Query) -> bool {
    let core = q.leading_select_mut();
    for item in &mut core.projections {
        if let SelectItem::Expr { expr: expr @ Expr::Column(_), .. } = item {
            *expr = Expr::Agg { func: AggFunc::Count, distinct: false, arg: FuncArg::Star };
            return true;
        }
    }
    false
}

fn count_to_plain(q: &mut Query, db: &Database) -> bool {
    let table = q.leading_select().from.base.name.clone();
    let core = q.leading_select_mut();
    for item in &mut core.projections {
        if let SelectItem::Expr { expr: expr @ Expr::Agg { .. }, .. } = item {
            // Replace the aggregate with the first text-ish column of the
            // base table (a plausible model mistake).
            if let Some(schema) = db.schema.table(&table) {
                if let Some(col) = schema.columns.first() {
                    *expr = Expr::col(cyclesql_sql::ColumnRef {
                        table: core.from.base.alias.clone().or(Some(table.clone())),
                        column: col.name.clone(),
                    });
                    return true;
                }
            }
        }
    }
    false
}

fn relax_comparison(q: &mut Query, rng: &mut StdRng) -> bool {
    let core = q.leading_select_mut();
    let Some(w) = &mut core.where_clause else { return false };
    relax_in_expr(w, rng)
}

fn relax_in_expr(e: &mut Expr, rng: &mut StdRng) -> bool {
    match e {
        Expr::Binary { op, left, right } => {
            if op.is_comparison()
                && matches!(right.as_ref(), Expr::Literal(_))
                && matches!(left.as_ref(), Expr::Column(_))
            {
                *op = match *op {
                    BinOp::Eq => {
                        if rng.gen_bool(0.5) {
                            BinOp::GtEq
                        } else {
                            BinOp::LtEq
                        }
                    }
                    BinOp::Gt => BinOp::GtEq,
                    BinOp::GtEq => BinOp::Gt,
                    BinOp::Lt => BinOp::LtEq,
                    BinOp::LtEq => BinOp::Lt,
                    BinOp::NotEq => BinOp::Eq,
                    other => other,
                };
                true
            } else {
                relax_in_expr(left, rng) || relax_in_expr(right, rng)
            }
        }
        _ => false,
    }
}

fn sibling_column(db: &Database, table: &str, col: &str) -> Option<String> {
    let schema = db.schema.table(table)?;
    let current = schema.column(col)?;
    schema
        .columns
        .iter()
        .find(|c| c.name != col && c.dtype == current.dtype)
        .map(|c| c.name.clone())
}

fn wrong_column(q: &mut Query, db: &Database, _rng: &mut StdRng) -> bool {
    // Swap the column in the first WHERE comparison to a same-typed sibling.
    let tables: Vec<(String, String)> = q
        .leading_select()
        .from
        .tables()
        .iter()
        .map(|t| (t.visible_name().to_string(), t.name.clone()))
        .collect();
    let core = q.leading_select_mut();
    let Some(w) = &mut core.where_clause else { return false };
    let mut swapped = false;
    swap_column_in(w, &tables, db, &mut swapped);
    swapped
}

fn swap_column_in(
    e: &mut Expr,
    tables: &[(String, String)],
    db: &Database,
    swapped: &mut bool,
) {
    if *swapped {
        return;
    }
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            if let (Expr::Column(c), Expr::Literal(_)) = (&mut **left, &**right) {
                let real = match &c.table {
                    Some(t) => tables
                        .iter()
                        .find(|(vis, _)| vis == t)
                        .map(|(_, real)| real.clone())
                        .unwrap_or_else(|| t.clone()),
                    None => tables.first().map(|(_, r)| r.clone()).unwrap_or_default(),
                };
                if let Some(sib) = sibling_column(db, &real, &c.column) {
                    c.column = sib;
                    *swapped = true;
                }
            }
        }
        Expr::Binary { left, right, .. } => {
            swap_column_in(left, tables, db, swapped);
            swap_column_in(right, tables, db, swapped);
        }
        _ => {}
    }
}

fn wrong_value(q: &mut Query, db: &Database, rng: &mut StdRng) -> bool {
    let tables: Vec<String> =
        q.leading_select().from.tables().iter().map(|t| t.name.clone()).collect();
    let core = q.leading_select_mut();
    let Some(w) = &mut core.where_clause else { return false };
    let mut done = false;
    perturb_value_in(w, &tables, db, rng, &mut done);
    done
}

fn perturb_value_in(
    e: &mut Expr,
    tables: &[String],
    db: &Database,
    rng: &mut StdRng,
    done: &mut bool,
) {
    if *done {
        return;
    }
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            if let (Expr::Column(c), Expr::Literal(lit)) = (&**left, &mut **right) {
                match lit {
                    Literal::Int(n) => {
                        *n = if rng.gen_bool(0.5) { *n * 10 } else { (*n / 2).max(1) };
                        *done = true;
                    }
                    Literal::Float(x) => {
                        *x *= if rng.gen_bool(0.5) { 10.0 } else { 0.5 };
                        *done = true;
                    }
                    Literal::Str(s) => {
                        // Another value from the same column, if any differs.
                        for t in tables {
                            if let Some(table) = db.table(t) {
                                if let Some(ci) = table.schema.column_index(&c.column) {
                                    for row in &table.rows {
                                        let v = row[ci].to_string();
                                        if v != *s && !v.is_empty() {
                                            *s = v;
                                            *done = true;
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                        s.push_str(" X");
                        *done = true;
                    }
                    _ => {}
                }
            }
        }
        Expr::Binary { left, right, .. } => {
            perturb_value_in(left, tables, db, rng, done);
            perturb_value_in(right, tables, db, rng, done);
        }
        Expr::InSubquery { subquery, .. } => {
            // Perturb inside the subquery.
            let sub_tables: Vec<String> = subquery
                .leading_select()
                .from
                .tables()
                .iter()
                .map(|t| t.name.clone())
                .collect();
            let core = subquery.leading_select_mut();
            if let Some(w) = &mut core.where_clause {
                perturb_value_in(w, &sub_tables, db, rng, done);
            }
        }
        _ => {}
    }
}

fn drop_conjunct(q: &mut Query, rng: &mut StdRng) -> bool {
    let core = q.leading_select_mut();
    let Some(w) = core.where_clause.take() else { return false };
    let mut parts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    if parts.len() < 2 {
        core.where_clause = Some(w);
        return false;
    }
    let drop = rng.gen_range(0..parts.len());
    parts.remove(drop);
    core.where_clause = Expr::from_conjuncts(parts);
    true
}

fn swap_set_op(body: &mut QueryBody) -> bool {
    if let QueryBody::SetOp { op, .. } = body {
        *op = match op {
            SetOp::Intersect => SetOp::Union,
            SetOp::Union => SetOp::Except,
            SetOp::Except => SetOp::Intersect,
        };
        true
    } else {
        false
    }
}

fn wrong_join_key(q: &mut Query, db: &Database, _rng: &mut StdRng) -> bool {
    // Visible-name → real-table map for resolving alias qualifiers.
    let alias_map: Vec<(String, String)> = q
        .leading_select()
        .from
        .tables()
        .iter()
        .map(|t| (t.visible_name().to_string(), t.name.clone()))
        .collect();
    let core = q.leading_select_mut();
    for join in &mut core.from.joins {
        let Some(on) = &mut join.on else { continue };
        if let Expr::Binary { op: BinOp::Eq, left, right } = on {
            for side in [left, right] {
                if let Expr::Column(c) = &mut **side {
                    let real = match &c.table {
                        Some(t) => alias_map
                            .iter()
                            .find(|(vis, _)| vis == t)
                            .map(|(_, r)| r.clone())
                            .unwrap_or_else(|| t.clone()),
                        None => join.table.name.clone(),
                    };
                    if let Some(sib) = sibling_column(db, &real, &c.column) {
                        c.column = sib;
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn flip_negation(q: &mut Query) -> bool {
    let core = q.leading_select_mut();
    let Some(w) = &mut core.where_clause else { return false };
    flip_negation_in(w)
}

fn flip_negation_in(e: &mut Expr) -> bool {
    match e {
        Expr::InSubquery { negated, .. }
        | Expr::InList { negated, .. }
        | Expr::Exists { negated, .. }
        | Expr::Like { negated, .. } => {
            *negated = !*negated;
            true
        }
        Expr::Binary { left, right, .. } => flip_negation_in(left) || flip_negation_in(right),
        _ => false,
    }
}

fn wrong_join_flavor(q: &mut Query) -> bool {
    let core = q.leading_select_mut();
    let Some(join) = core.from.joins.first_mut() else { return false };
    // Exhaustive rotation — every flavor has a designated confusion, so a
    // new flavor must pick its wrong twin here.
    join.join_type = match join.join_type {
        JoinType::Inner => JoinType::Left,
        JoinType::Left => JoinType::Inner,
        JoinType::Right => JoinType::Full,
        JoinType::Full => JoinType::Right,
    };
    true
}

fn wrong_case_branch(q: &mut Query) -> bool {
    let core = q.leading_select_mut();
    for item in &mut core.projections {
        if let SelectItem::Expr { expr, .. } = item {
            if corrupt_case_in(expr) {
                return true;
            }
        }
    }
    if let Some(w) = &mut core.where_clause {
        if corrupt_case_in(w) {
            return true;
        }
    }
    false
}

fn corrupt_case_in(e: &mut Expr) -> bool {
    match e {
        Expr::Case { branches, else_, .. } => {
            if branches.len() >= 2 {
                branches.swap(0, 1);
                true
            } else if let (Some((_, then)), Some(els)) =
                (branches.first_mut(), else_.as_deref_mut())
            {
                std::mem::swap(then, els);
                true
            } else {
                false
            }
        }
        Expr::Binary { left, right, .. } => corrupt_case_in(left) || corrupt_case_in(right),
        Expr::Not(inner) => corrupt_case_in(inner),
        _ => false,
    }
}

fn drop_cte_filter(q: &mut Query) -> bool {
    for cte in &mut q.ctes {
        if cte.query.leading_select_mut().where_clause.take().is_some() {
            return true;
        }
    }
    false
}

fn change_having_bound(q: &mut Query) -> bool {
    let core = q.leading_select_mut();
    let Some(h) = &mut core.having else { return false };
    if let Expr::Binary { right, .. } = h {
        if let Expr::Literal(Literal::Int(n)) = &mut **right {
            *n += 2;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_sql::{parse, to_sql};
    use cyclesql_storage::{
        execute, ColumnDef, DataType, DatabaseSchema, TableSchema, Value,
    };
    use rand::SeedableRng;

    fn db() -> Database {
        let mut schema = DatabaseSchema::new("t");
        schema.add_table(TableSchema::new(
            "flight",
            vec![
                ColumnDef::new("flno", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("origin", DataType::Text),
                ColumnDef::new("destination", DataType::Text),
            ],
        ));
        schema.add_table(TableSchema::new(
            "aircraft",
            vec![
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ],
        ));
        let mut d = Database::new(schema);
        d.insert("flight", vec![Value::Int(7), Value::Int(3), Value::from("LA"), Value::from("Tokyo")]);
        d.insert("flight", vec![Value::Int(13), Value::Int(3), Value::from("Boston"), Value::from("LA")]);
        d.insert("aircraft", vec![Value::Int(3), Value::from("Airbus A340-300")]);
        d
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn plain_to_count_reproduces_figure2() {
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        let wrong = apply_error_op(ErrorOp::PlainToCount, &q, &db(), &mut rng()).unwrap();
        assert!(to_sql(&wrong).contains("count(*)"));
    }

    #[test]
    fn relax_comparison_changes_operator() {
        let q = parse("SELECT flno FROM flight WHERE aid = 3").unwrap();
        let wrong = apply_error_op(ErrorOp::RelaxComparison, &q, &db(), &mut rng()).unwrap();
        let sql = to_sql(&wrong);
        assert!(sql.contains(">=") || sql.contains("<="), "{sql}");
    }

    #[test]
    fn wrong_column_swaps_same_type_sibling() {
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        let wrong = apply_error_op(ErrorOp::WrongColumn, &q, &db(), &mut rng()).unwrap();
        assert!(to_sql(&wrong).contains("destination = 'LA'"), "{}", to_sql(&wrong));
    }

    #[test]
    fn wrong_join_key_reproduces_error_analysis_case() {
        let q = parse(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid",
        )
        .unwrap();
        // flight has another Int column (flno) to confuse with aid.
        let wrong = apply_error_op(ErrorOp::WrongJoinKey, &q, &db(), &mut rng()).unwrap();
        let sql = to_sql(&wrong);
        assert!(sql.contains("t1.flno = t2.aid") || sql.contains("flno"), "{sql}");
    }

    #[test]
    fn wrong_value_replaces_string_with_other_data_value() {
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        let wrong = apply_error_op(ErrorOp::WrongValue, &q, &db(), &mut rng()).unwrap();
        let sql = to_sql(&wrong);
        assert!(!sql.contains("'LA'"), "{sql}");
    }

    #[test]
    fn drop_conjunct_requires_two() {
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        assert!(apply_error_op(ErrorOp::DropConjunct, &q, &db(), &mut rng()).is_none());
        let q2 = parse("SELECT flno FROM flight WHERE origin = 'LA' AND aid = 3").unwrap();
        let wrong = apply_error_op(ErrorOp::DropConjunct, &q2, &db(), &mut rng()).unwrap();
        assert_eq!(
            wrong.leading_select().where_clause.as_ref().unwrap().conjuncts().len(),
            1
        );
    }

    #[test]
    fn swap_set_op_applies_only_to_set_queries() {
        let q = parse("SELECT flno FROM flight").unwrap();
        assert!(apply_error_op(ErrorOp::SwapSetOp, &q, &db(), &mut rng()).is_none());
        let q2 = parse("SELECT flno FROM flight INTERSECT SELECT flno FROM flight").unwrap();
        let wrong = apply_error_op(ErrorOp::SwapSetOp, &q2, &db(), &mut rng()).unwrap();
        assert!(to_sql(&wrong).contains("UNION"));
    }

    #[test]
    fn flip_negation_inverts_in() {
        let q = parse(
            "SELECT flno FROM flight WHERE aid IN (SELECT aid FROM aircraft)",
        )
        .unwrap();
        let wrong = apply_error_op(ErrorOp::FlipNegation, &q, &db(), &mut rng()).unwrap();
        assert!(to_sql(&wrong).contains("NOT IN"));
    }

    #[test]
    fn wrong_join_flavor_rotates_every_flavor() {
        let d = db();
        let cases = [
            ("JOIN", "LEFT JOIN"),
            ("LEFT JOIN", "JOIN"),
            ("RIGHT JOIN", "FULL OUTER JOIN"),
            ("FULL OUTER JOIN", "RIGHT JOIN"),
        ];
        for (from, to) in cases {
            let q = parse(&format!(
                "SELECT flno FROM flight AS T1 {from} aircraft AS T2 ON T1.aid = T2.aid"
            ))
            .unwrap();
            let wrong = apply_error_op(ErrorOp::WrongJoinFlavor, &q, &d, &mut rng()).unwrap();
            assert!(to_sql(&wrong).contains(to), "{from}: {}", to_sql(&wrong));
        }
        let no_join = parse("SELECT flno FROM flight").unwrap();
        assert!(apply_error_op(ErrorOp::WrongJoinFlavor, &no_join, &d, &mut rng()).is_none());
    }

    #[test]
    fn wrong_case_branch_swaps_arms() {
        let d = db();
        let q = parse(
            "SELECT CASE WHEN aid = 3 THEN 'a' WHEN aid = 4 THEN 'b' END FROM flight",
        )
        .unwrap();
        let wrong = apply_error_op(ErrorOp::WrongCaseBranch, &q, &d, &mut rng()).unwrap();
        let sql = to_sql(&wrong);
        assert!(sql.find("'b'").unwrap() < sql.find("'a'").unwrap(), "{sql}");
        // Single branch: THEN and ELSE trade places.
        let q2 =
            parse("SELECT CASE WHEN aid = 3 THEN 'hit' ELSE 'miss' END FROM flight").unwrap();
        let wrong2 = apply_error_op(ErrorOp::WrongCaseBranch, &q2, &d, &mut rng()).unwrap();
        assert!(to_sql(&wrong2).contains("THEN 'miss' ELSE 'hit'"), "{}", to_sql(&wrong2));
    }

    #[test]
    fn drop_cte_filter_widens_with_body() {
        let d = db();
        let q = parse(
            "WITH la AS (SELECT flno FROM flight WHERE origin = 'LA') SELECT count(*) FROM la",
        )
        .unwrap();
        let wrong = apply_error_op(ErrorOp::DropCteFilter, &q, &d, &mut rng()).unwrap();
        assert!(!to_sql(&wrong).contains("WHERE"), "{}", to_sql(&wrong));
        let plain = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        assert!(apply_error_op(ErrorOp::DropCteFilter, &plain, &d, &mut rng()).is_none());
    }

    #[test]
    fn all_ops_produce_executable_sql_when_applicable() {
        let d = db();
        let queries = [
            "SELECT flno FROM flight WHERE origin = 'LA' AND aid = 3",
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
            "SELECT max(aid) FROM flight GROUP BY origin HAVING count(*) > 1 ORDER BY max(aid) DESC LIMIT 1",
            "SELECT flno FROM flight INTERSECT SELECT flno FROM flight WHERE aid = 3",
            "SELECT DISTINCT origin FROM flight WHERE aid IN (SELECT aid FROM aircraft)",
            "WITH la AS (SELECT flno, aid FROM flight WHERE origin = 'LA') SELECT count(*) FROM la",
            "SELECT CASE WHEN aid = 3 THEN 'a' ELSE 'b' END FROM flight",
            "SELECT T1.flno FROM flight AS T1 FULL OUTER JOIN aircraft AS T2 ON T1.aid = T2.aid",
            "SELECT T1.flno FROM flight AS T1 RIGHT JOIN aircraft AS T2 ON T1.aid = T2.aid",
        ];
        for sql in queries {
            let q = parse(sql).unwrap();
            for op in ErrorOp::ALL {
                let mut r = rng();
                if let Some(wrong) = apply_error_op(op, &q, &d, &mut r) {
                    let rendered = to_sql(&wrong);
                    let reparsed = parse(&rendered)
                        .unwrap_or_else(|e| panic!("{op:?} on {sql}: unparseable {rendered}: {e}"));
                    execute(&d, &reparsed)
                        .unwrap_or_else(|e| panic!("{op:?} on {sql}: {rendered}: {e}"));
                }
            }
        }
    }

    #[test]
    fn random_error_always_finds_an_op() {
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        let mut r = rng();
        for _ in 0..20 {
            assert!(apply_random_error(&q, &db(), &mut r).is_some());
        }
    }
}
