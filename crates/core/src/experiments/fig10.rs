//! Figure 10: the user study — explanation quality ratings for CycleSQL vs
//! the GPT-3.5-style SQL2NL explanations over the five case-study queries.
//!
//! The 20 human participants are replaced by the programmatic rating panel
//! of `cyclesql-explain::quality` (documented substitution): each simulated
//! participant scores both explanations of every query on the study's two
//! dimensions, and preferences are tallied the way the paper reports them
//! ("14 out of 20 participants preferred CycleSQL").

use super::table4;
use super::ExperimentContext;
use cyclesql_benchgen::Split;
use cyclesql_explain::{panel_rating, sql_to_nl, QualityScore, RatingBucket};
use cyclesql_provenance::track_provenance;
use serde::Serialize;
use std::fmt::Write as _;

/// Number of simulated study participants (the paper enlisted 20).
pub const PARTICIPANTS: usize = 20;

/// Ratings for one query under both systems.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// Query label (Q1…Q5).
    pub query: String,
    /// Panel rating of the CycleSQL explanation.
    pub cyclesql: StudyScore,
    /// Panel rating of the SQL2NL (GPT-3.5 stand-in) explanation.
    pub sql2nl: StudyScore,
}

/// A serializable quality score.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StudyScore {
    /// Query-result interpretability (1–10).
    pub interpretability: f64,
    /// Textual entailment with the NL question (1–10).
    pub entailment: f64,
    /// Overall.
    pub overall: f64,
}

impl From<QualityScore> for StudyScore {
    fn from(q: QualityScore) -> Self {
        StudyScore {
            interpretability: q.interpretability,
            entailment: q.entailment,
            overall: q.overall,
        }
    }
}

/// The whole study.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Result {
    /// Per-query ratings.
    pub rows: Vec<Fig10Row>,
    /// Participants preferring CycleSQL overall (out of [`PARTICIPANTS`]).
    pub prefer_cyclesql: usize,
}

/// Runs the simulated user study.
pub fn run(ctx: &ExperimentContext) -> Fig10Result {
    let cases = table4::run(ctx);
    let mut rows = Vec::new();
    let mut prefer = 0usize;
    for (qi, case) in cases.entries.iter().enumerate() {
        let Some((idx, item)) = ctx
            .spider
            .dev
            .iter()
            .enumerate()
            .find(|(_, i)| i.gold_sql == case.sql && i.db_name == "world_1")
        else {
            continue;
        };
        let db = ctx.spider.database(item);
        // The case SQL is the item's gold, so the session already holds its
        // parsed AST and executed result.
        let prep = ctx.spider.prepared_item(Split::Dev, idx);
        let query = prep.gold_ast.as_deref().expect("case SQL parses");
        let result = prep.gold_result.as_deref().expect("case SQL executes");
        let prov = track_provenance(db, query, result, 0).expect("provenance");
        let grounded = cyclesql_explain::generate_explanation(db, query, result, 0, &prov);
        let baseline = sql_to_nl(db, query);

        let seed = 0xF16_u64 + qi as u64;
        let cyclesql_score = panel_rating(
            query,
            &case.polished,
            &grounded.facets,
            true,
            PARTICIPANTS,
            seed,
        );
        let sql2nl_score =
            panel_rating(query, &baseline.text, &baseline.facets, false, PARTICIPANTS, seed);

        // Per-participant preference: jittered overall comparison.
        for p in 0..PARTICIPANTS {
            // Participants weight the two dimensions very differently;
            // the jitter spread is sized so a minority can plausibly
            // prefer the fluent LLM baseline (the paper saw 14/20).
            let jitter = |s: f64, salt: u64| {
                let h = (seed ^ salt)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(p as u64)
                    .wrapping_mul(0xD6E8FEB86659FD93);
                let r = ((h >> 32) as u32) as f64 / u32::MAX as f64;
                s + (r - 0.5) * 8.0
            };
            if jitter(cyclesql_score.overall, 1) > jitter(sql2nl_score.overall, 2) {
                prefer += 1;
            }
        }
        rows.push(Fig10Row {
            query: case.label.clone(),
            cyclesql: cyclesql_score.into(),
            sql2nl: sql2nl_score.into(),
        });
    }
    let prefer_cyclesql = if rows.is_empty() {
        0
    } else {
        // Average per-query preference, rounded to participants.
        (prefer as f64 / rows.len() as f64).round() as usize
    };
    Fig10Result { rows, prefer_cyclesql }
}

fn bucket_symbol(overall: f64) -> &'static str {
    let s = QualityScore { interpretability: overall, entailment: overall, overall };
    match s.bucket() {
        RatingBucket::Great => "great",
        RatingBucket::Neutral => "neutral",
        RatingBucket::Bad => "bad",
    }
}

impl Fig10Result {
    /// Plain-text rendering of the study results.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 10: simulated user study ({PARTICIPANTS} participants)"
        );
        let _ = writeln!(
            out,
            "{:<6} {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10}",
            "query", "cyc-interp", "cyc-entail", "cyc-all", "s2n-interp", "s2n-entail", "s2n-all"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>12.1} {:>12.1} {:>7.1}({}) | {:>12.1} {:>12.1} {:>7.1}({})",
                r.query,
                r.cyclesql.interpretability,
                r.cyclesql.entailment,
                r.cyclesql.overall,
                bucket_symbol(r.cyclesql.overall),
                r.sql2nl.interpretability,
                r.sql2nl.entailment,
                r.sql2nl.overall,
                bucket_symbol(r.sql2nl.overall),
            );
        }
        let _ = writeln!(
            out,
            "{} out of {PARTICIPANTS} simulated participants preferred CycleSQL explanations",
            self.prefer_cyclesql
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclesql_rated_above_sql2nl() {
        let ctx = ExperimentContext::shared_quick();
        let f = run(ctx);
        assert!(!f.rows.is_empty());
        let avg_cyc: f64 =
            f.rows.iter().map(|r| r.cyclesql.overall).sum::<f64>() / f.rows.len() as f64;
        let avg_s2n: f64 =
            f.rows.iter().map(|r| r.sql2nl.overall).sum::<f64>() / f.rows.len() as f64;
        assert!(
            avg_cyc > avg_s2n,
            "CycleSQL explanations must out-rate SQL2NL: {avg_cyc:.1} vs {avg_s2n:.1}"
        );
        // A majority of participants prefer CycleSQL (the paper: 14/20).
        assert!(
            f.prefer_cyclesql > PARTICIPANTS / 2,
            "majority preference expected, got {}",
            f.prefer_cyclesql
        );
    }

    #[test]
    fn study_is_deterministic() {
        let ctx = ExperimentContext::shared_quick();
        let a = run(ctx);
        let b = run(ctx);
        assert_eq!(a.prefer_cyclesql, b.prefer_cyclesql);
        assert_eq!(a.rows.len(), b.rows.len());
    }
}
