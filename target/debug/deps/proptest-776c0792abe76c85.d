/root/repo/target/debug/deps/proptest-776c0792abe76c85.d: .stubs/proptest/src/lib.rs .stubs/proptest/src/strategy.rs .stubs/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-776c0792abe76c85.rmeta: .stubs/proptest/src/lib.rs .stubs/proptest/src/strategy.rs .stubs/proptest/src/test_runner.rs

.stubs/proptest/src/lib.rs:
.stubs/proptest/src/strategy.rs:
.stubs/proptest/src/test_runner.rs:
