//! Tests pinning the compile-once pipeline to the reference interpreter:
//! subquery hoisting runs prologues exactly once per `run`, compile-time
//! resolution errors match the interpreter's runtime errors, and set
//! operations dedup/merge lineage identically under the keyed rewrite.

use crate::compile::compile;
use crate::reference;
use crate::schema::{ColumnDef, DataType, DatabaseSchema, TableSchema};
use crate::table::Database;
use crate::value::Value;
use cyclesql_sql::parse;

fn flight_db() -> Database {
    let mut schema = DatabaseSchema::new("flights");
    schema.add_table(TableSchema::new(
        "aircraft",
        vec![
            ColumnDef::new("aid", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("distance", DataType::Int),
        ],
    ));
    schema.add_table(TableSchema::new(
        "flight",
        vec![
            ColumnDef::new("flno", DataType::Int),
            ColumnDef::new("aid", DataType::Int),
            ColumnDef::new("price", DataType::Float),
        ],
    ));
    let mut db = Database::new(schema);
    db.insert(
        "aircraft",
        vec![
            Value::Int(1),
            Value::from("Boeing 747-400"),
            Value::Int(8430),
        ],
    );
    db.insert(
        "aircraft",
        vec![
            Value::Int(2),
            Value::from("Boeing 737-800"),
            Value::Int(3383),
        ],
    );
    db.insert(
        "aircraft",
        vec![
            Value::Int(3),
            Value::from("Airbus A340-300"),
            Value::Int(7120),
        ],
    );
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Int(1), Value::Float(235.98)],
    );
    db.insert(
        "flight",
        vec![Value::Int(13), Value::Int(3), Value::Float(220.98)],
    );
    db.insert(
        "flight",
        vec![Value::Int(346), Value::Int(3), Value::Float(320.12)],
    );
    db.insert(
        "flight",
        vec![Value::Int(387), Value::Int(2), Value::Float(110.65)],
    );
    db
}

/// Asserts compiled output and reference output are *strictly* identical:
/// columns, rows (by Debug rendering, stricter than `Value`'s sql_eq-based
/// `PartialEq`), and lineage including order.
fn assert_paths_identical(db: &Database, sql: &str) {
    let q = parse(sql).unwrap();
    let reference = reference::execute_with_lineage(db, &q).unwrap();
    let compiled = compile(db, &q).unwrap().run(db).unwrap();
    assert_eq!(
        reference.result.columns, compiled.result.columns,
        "columns for {sql}"
    );
    assert_eq!(
        format!("{:?}", reference.result.rows),
        format!("{:?}", compiled.result.rows),
        "rows for {sql}"
    );
    assert_eq!(reference.lineage, compiled.lineage, "lineage for {sql}");
}

// ---------------------------------------------------------------------------
// Subquery hoisting
// ---------------------------------------------------------------------------

#[test]
fn in_subquery_prologue_runs_exactly_once_per_run() {
    let db = flight_db();
    // Four outer rows: the tree-walker would evaluate the subquery four
    // times; the compiled plan hoists it into a prologue that runs once.
    let q = parse(
        "SELECT flno FROM flight WHERE aid IN (SELECT aid FROM aircraft WHERE distance > 5000)",
    )
    .unwrap();
    let compiled = compile(&db, &q).unwrap();
    let (out, stats) = compiled.run_with_stats(&db).unwrap();
    assert_eq!(stats.subquery_runs, 1);
    assert_eq!(out.result.len(), 3); // flights on aircraft 1 and 3

    // The prologue result is not baked in at compile time: a second run
    // against a database with different data re-executes it.
    let mut other = flight_db();
    other.table_mut("aircraft").unwrap().rows.clear();
    let (out2, stats2) = compiled.run_with_stats(&other).unwrap();
    assert_eq!(stats2.subquery_runs, 1);
    assert!(out2.result.is_empty());
}

#[test]
fn exists_and_scalar_subqueries_also_hoist_once() {
    let db = flight_db();
    for sql in [
        "SELECT name FROM aircraft WHERE EXISTS (SELECT * FROM flight WHERE price > 300)",
        "SELECT flno FROM flight WHERE price > (SELECT avg(price) FROM flight)",
    ] {
        let q = parse(sql).unwrap();
        let (_, stats) = compile(&db, &q).unwrap().run_with_stats(&db).unwrap();
        assert_eq!(stats.subquery_runs, 1, "for {sql}");
    }
}

#[test]
fn nested_subqueries_count_each_prologue() {
    let db = flight_db();
    let q = parse(
        "SELECT flno FROM flight WHERE aid IN \
         (SELECT aid FROM aircraft WHERE distance > (SELECT avg(distance) FROM aircraft))",
    )
    .unwrap();
    let (out, stats) = compile(&db, &q).unwrap().run_with_stats(&db).unwrap();
    // Outer IN prologue plus the scalar prologue nested inside it.
    assert_eq!(stats.subquery_runs, 2);
    assert_eq!(out.result.len(), 3);
    assert_paths_identical(
        &db,
        "SELECT flno FROM flight WHERE aid IN \
         (SELECT aid FROM aircraft WHERE distance > (SELECT avg(distance) FROM aircraft))",
    );
}

// ---------------------------------------------------------------------------
// Compile-time resolution errors
// ---------------------------------------------------------------------------

#[test]
fn compile_errors_match_interpreter_errors() {
    let db = flight_db();
    for sql in [
        "SELECT nosuch FROM flight",
        "SELECT t9.flno FROM flight",
        "SELECT flno FROM nosuch_table",
        "SELECT nosuch.* FROM flight",
        "SELECT flno FROM flight WHERE bogus = 1",
        "SELECT flno FROM flight ORDER BY bogus",
        "SELECT flno FROM flight GROUP BY bogus",
        "SELECT flno FROM flight UNION SELECT aid, name FROM aircraft",
        "SELECT count(*) FROM flight JOIN nosuch ON flno = x",
        "SELECT flno FROM flight WHERE aid IN (SELECT bogus FROM aircraft)",
    ] {
        let q = parse(sql).unwrap();
        let compile_err = compile(&db, &q).expect_err(sql).to_string();
        let reference_err = reference::execute(&db, &q).expect_err(sql).to_string();
        assert_eq!(compile_err, reference_err, "error mismatch for {sql}");
    }
}

#[test]
fn resolution_happens_at_compile_not_run() {
    let db = flight_db();
    let q = parse("SELECT nosuch FROM flight").unwrap();
    // The error surfaces from `compile`; there is no plan to run.
    assert!(compile(&db, &q).is_err());
}

// ---------------------------------------------------------------------------
// Set operations under keyed dedup
// ---------------------------------------------------------------------------

#[test]
fn set_op_dedup_matches_reference() {
    let db = flight_db();
    for sql in [
        "SELECT aid FROM flight UNION SELECT aid FROM aircraft",
        "SELECT aid FROM flight INTERSECT SELECT aid FROM aircraft",
        "SELECT aid FROM aircraft EXCEPT SELECT aid FROM flight",
        "SELECT aid FROM flight EXCEPT SELECT aid FROM aircraft WHERE distance > 5000",
        "SELECT aid FROM flight UNION SELECT aid FROM aircraft ORDER BY aid DESC LIMIT 3",
    ] {
        assert_paths_identical(&db, sql);
    }
}

#[test]
fn intersect_lineage_merge_order_is_preserved() {
    let db = flight_db();
    let q = parse("SELECT aid FROM flight INTERSECT SELECT aid FROM aircraft").unwrap();
    let out = crate::exec::execute_with_lineage(&db, &q).unwrap();
    // Each surviving left row's lineage starts with its own source and then
    // appends the first matching right row's sources, in that order.
    for lin in &out.lineage {
        assert_eq!(lin.len(), 2);
        assert_eq!(lin[0].table.as_ref(), "flight");
        assert_eq!(lin[1].table.as_ref(), "aircraft");
    }
    assert_paths_identical(
        &db,
        "SELECT aid FROM flight INTERSECT SELECT aid FROM aircraft",
    );
}

// ---------------------------------------------------------------------------
// Broad differential spots (grouping, joins, distinct, expressions)
// ---------------------------------------------------------------------------

#[test]
fn differential_spot_checks() {
    let db = flight_db();
    for sql in [
        "SELECT count(*) FROM flight",
        "SELECT aid, count(*), avg(price) FROM flight GROUP BY aid HAVING count(*) > 1",
        "SELECT DISTINCT aid FROM flight ORDER BY aid",
        "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T2.distance > 5000 ORDER BY T1.flno",
        "SELECT name FROM aircraft WHERE aid NOT IN (SELECT aid FROM flight WHERE price > 300)",
        "SELECT flno FROM flight WHERE price BETWEEN 200 AND 330 ORDER BY price DESC",
        "SELECT name FROM aircraft WHERE name LIKE 'Boeing%'",
        "SELECT max(price) - min(price) FROM flight",
        "SELECT aid FROM flight GROUP BY aid ORDER BY count(*) DESC, aid LIMIT 2",
        "SELECT T2.name, sum(T1.price) FROM flight AS T1 LEFT JOIN aircraft AS T2 \
         ON T1.aid = T2.aid GROUP BY T2.name",
    ] {
        assert_paths_identical(&db, sql);
    }
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution
// ---------------------------------------------------------------------------

#[test]
fn morsel_pool_output_is_thread_count_invariant() {
    use crate::run::ExecOpts;
    let db = flight_db();
    // One-row morsels make every operator cross a morsel boundary, and 8
    // workers over at most four morsels leaves some workers idle — the
    // in-order merge must hide all of it.
    for sql in [
        "SELECT aid, count(*), avg(price) FROM flight GROUP BY aid HAVING count(*) > 1",
        "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         ORDER BY T1.flno",
        "SELECT DISTINCT aid FROM flight",
        "SELECT count(*) FROM flight WHERE price > 10000",
    ] {
        let q = parse(sql).unwrap();
        let plan = compile(&db, &q).unwrap();
        for batch_rows in [1, 2, 1024] {
            let opts = ExecOpts {
                batch_rows,
                ..ExecOpts::default()
            };
            let (base, base_stats) = plan.run_opts(&db, &opts).unwrap();
            for threads in [2, 4, 8] {
                let opts = ExecOpts {
                    batch_rows,
                    threads,
                    ..ExecOpts::default()
                };
                let (out, stats) = plan.run_opts(&db, &opts).unwrap();
                assert_eq!(
                    format!("{:?}", base.result.rows),
                    format!("{:?}", out.result.rows),
                    "rows at {threads} threads, batch {batch_rows}: {sql}"
                );
                assert_eq!(
                    base.lineage, out.lineage,
                    "lineage at {threads} threads, batch {batch_rows}: {sql}"
                );
                assert_eq!(base_stats, stats, "stats at {threads} threads: {sql}");
            }
        }
    }
}

#[test]
fn vectorized_prologue_keeps_subquery_run_counts() {
    use crate::run::ExecOpts;
    let db = flight_db();
    // The prologue now executes through the columnar kernels; the
    // accumulate-on-success stats contract must still count each hoisted
    // subquery exactly once, at any batch size or thread count.
    let q = parse(
        "SELECT flno FROM flight WHERE aid IN \
         (SELECT aid FROM aircraft WHERE distance > (SELECT avg(distance) FROM aircraft))",
    )
    .unwrap();
    let plan = compile(&db, &q).unwrap();
    for batch_rows in [1, 1024] {
        for threads in [1, 4] {
            let opts = ExecOpts {
                batch_rows,
                threads,
                ..ExecOpts::default()
            };
            let (out, stats) = plan.run_opts(&db, &opts).unwrap();
            assert_eq!(
                stats.subquery_runs, 2,
                "batch {batch_rows}, {threads} threads"
            );
            assert_eq!(out.result.len(), 3);
        }
    }
}
