//! Figure 8: scalability — (a) average CycleSQL iterations per model and
//! (b) inference latency with and without CycleSQL.

use super::ExperimentContext;
use crate::eval::{evaluate, EvalMode, EvalOptions, Parallelism};
use cyclesql_benchgen::Split;
use cyclesql_models::SimulatedModel;
use serde::Serialize;
use std::fmt::Write as _;

/// One model's scalability numbers.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Model name.
    pub model: String,
    /// Average loop iterations until acceptance (Figure 8a).
    pub avg_iterations: f64,
    /// Average base-model inference latency in ms.
    pub base_latency_ms: f64,
    /// Average latency with the CycleSQL loop in ms (Figure 8b).
    pub cycle_latency_ms: f64,
    /// Whether the model is excluded from the latency comparison (PICARD's
    /// token-validation web service dominates, as footnote 13 notes).
    pub excluded_from_latency: bool,
}

/// The whole figure's data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// One row per model.
    pub rows: Vec<Fig8Row>,
}

/// Runs the scalability evaluation.
pub fn run(ctx: &ExperimentContext, models: &[SimulatedModel]) -> Fig8Result {
    let cycle = ctx.cycle();
    let rows = models
        .iter()
        .map(|model| {
            let base = evaluate(
                model,
                &EvalOptions {
                    session: &ctx.spider,
                    split: Split::Dev,
                    mode: EvalMode::Base,
                    cycle: None,
                    k: None,
                    compute_ts: false,
                    parallelism: Parallelism::Auto,
                },
            );
            let with = evaluate(
                model,
                &EvalOptions {
                    session: &ctx.spider,
                    split: Split::Dev,
                    mode: EvalMode::CycleSql,
                    cycle: Some(&cycle),
                    k: None,
                    compute_ts: false,
                    parallelism: Parallelism::Auto,
                },
            );
            Fig8Row {
                model: model.profile.name.to_string(),
                avg_iterations: with.avg_iterations,
                base_latency_ms: base.avg_latency_ms,
                cycle_latency_ms: with.avg_latency_ms,
                excluded_from_latency: model.profile.name.starts_with("PICARD"),
            }
        })
        .collect();
    Fig8Result { rows }
}

impl Fig8Result {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Figure 8a: average CycleSQL iterations per model");
        for r in &self.rows {
            let _ = writeln!(out, "  {:<16} {:>5.2}", r.model, r.avg_iterations);
        }
        let _ = writeln!(out, "Figure 8b: average inference latency (ms), base vs +CycleSQL");
        for r in &self.rows {
            if r.excluded_from_latency {
                let _ = writeln!(out, "  {:<16} (excluded: interactive decoding)", r.model);
            } else {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>9.1} -> {:>9.1}  (+{:.1} ms loop overhead)",
                    r.model,
                    r.base_latency_ms,
                    r.cycle_latency_ms,
                    r.cycle_latency_ms - r.base_latency_ms
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_models::ModelProfile;

    #[test]
    fn iterations_small_for_good_models_larger_for_picard() {
        let ctx = ExperimentContext::shared_quick();
        let models = vec![
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            SimulatedModel::new(ModelProfile::picard()),
        ];
        let f = run(ctx, &models);
        let resdsql = &f.rows[0];
        let picard = &f.rows[1];
        assert!(
            resdsql.avg_iterations < 3.0,
            "RESDSQL should settle in 1-2 iterations: {}",
            resdsql.avg_iterations
        );
        assert!(
            picard.avg_iterations > resdsql.avg_iterations,
            "PICARD ({}) needs more iterations than RESDSQL ({})",
            picard.avg_iterations,
            resdsql.avg_iterations
        );
    }

    #[test]
    fn loop_overhead_is_minimal_relative_to_inference() {
        let ctx = ExperimentContext::shared_quick();
        let models = vec![SimulatedModel::new(ModelProfile::resdsql_3b())];
        let f = run(ctx, &models);
        let r = &f.rows[0];
        let overhead = r.cycle_latency_ms - r.base_latency_ms;
        assert!(overhead >= 0.0);
        assert!(
            overhead < r.base_latency_ms,
            "the paper's claim: loop overhead ({overhead:.1} ms) is small vs inference ({} ms)",
            r.base_latency_ms
        );
    }
}
