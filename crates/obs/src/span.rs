//! Spans, the tracer that mints them, and the shared overhead counters.

use crate::sink::SpanSink;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Text.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One key/value attribute on a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute name (static so recording never allocates for keys).
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

/// A finished span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the tracer).
    pub span_id: u64,
    /// Parent span id; `None` for a trace root.
    pub parent_id: Option<u64>,
    /// Span name (a pipeline stage or operator label).
    pub name: &'static str,
    /// Start offset in microseconds since the tracer's epoch (monotonic).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Whether the span recorded an error (failed stage, shed, deadline).
    pub error: bool,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<Attr>,
}

impl SpanRecord {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|a| a.key == key).map(|a| &a.value)
    }

    /// Renders the record as one JSON object (the JSONL line format).
    ///
    /// Serialization is hand-rolled rather than serde-derived so the trace
    /// pipeline stays functional in std-only environments; the format is
    /// fixed: `trace_id`, `span_id`, `parent_id` (number or null), `name`,
    /// `start_us`, `dur_us`, `error`, and `attrs` as a flat object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"trace_id\":");
        out.push_str(&self.trace_id.to_string());
        out.push_str(",\"span_id\":");
        out.push_str(&self.span_id.to_string());
        out.push_str(",\"parent_id\":");
        match self.parent_id {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_json_str(&mut out, self.name);
        out.push_str(",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&self.dur_us.to_string());
        out.push_str(",\"error\":");
        out.push_str(if self.error { "true" } else { "false" });
        out.push_str(",\"attrs\":{");
        for (i, attr) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, attr.key);
            out.push(':');
            match &attr.value {
                AttrValue::Str(s) => push_json_str(&mut out, s),
                AttrValue::Int(v) => out.push_str(&v.to_string()),
                AttrValue::Float(v) => {
                    if v.is_finite() {
                        out.push_str(&v.to_string());
                    } else {
                        out.push_str("null");
                    }
                }
                AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes applied).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Overhead counters shared by a tracer and its sink chain. All relaxed
/// atomics; exact at quiescence. With tracing disabled nothing increments
/// them — the CI gate asserts they read zero on an untraced run.
#[derive(Debug, Default)]
pub struct ObsCounters {
    /// Spans finished (handed to the sink chain).
    pub spans_finished: AtomicU64,
    /// Span records delivered to a terminal sink (memory ring / JSONL).
    pub spans_emitted: AtomicU64,
    /// Span records discarded (unsampled trace, or ring-buffer overwrite).
    pub spans_dropped: AtomicU64,
    /// Traces kept by the sampler.
    pub traces_sampled: AtomicU64,
    /// Traces discarded by the sampler.
    pub traces_discarded: AtomicU64,
    /// Span-ring slots overwritten before being read (bounded
    /// [`MemorySink`](crate::sink::MemorySink) evictions; a subset of
    /// `spans_dropped`).
    pub span_ring_overwrites: AtomicU64,
    /// Request-summary-ring slots overwritten before being read (the
    /// serving tier's debug request log evicting its oldest entry).
    pub request_ring_overwrites: AtomicU64,
}

/// Serializable point-in-time view of [`ObsCounters`].
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ObsCountersSnapshot {
    /// Spans finished.
    pub spans_finished: u64,
    /// Spans delivered to a terminal sink.
    pub spans_emitted: u64,
    /// Spans discarded.
    pub spans_dropped: u64,
    /// Traces kept by the sampler.
    pub traces_sampled: u64,
    /// Traces discarded by the sampler.
    pub traces_discarded: u64,
    /// Span-ring slots overwritten before being read.
    pub span_ring_overwrites: u64,
    /// Request-summary-ring slots overwritten before being read.
    pub request_ring_overwrites: u64,
}

impl ObsCounters {
    /// A serializable snapshot.
    pub fn snapshot(&self) -> ObsCountersSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ObsCountersSnapshot {
            spans_finished: load(&self.spans_finished),
            spans_emitted: load(&self.spans_emitted),
            spans_dropped: load(&self.spans_dropped),
            traces_sampled: load(&self.traces_sampled),
            traces_discarded: load(&self.traces_discarded),
            span_ring_overwrites: load(&self.span_ring_overwrites),
            request_ring_overwrites: load(&self.request_ring_overwrites),
        }
    }
}

/// State shared by a tracer and every span it mints.
struct TracerShared {
    epoch: Instant,
    sink: Arc<dyn SpanSink>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    counters: Arc<ObsCounters>,
}

/// Mints root spans. Cheap to share (`Arc` it once); thread-safe — workers
/// open roots and children concurrently, ids are atomic allocations.
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Tracer {
    /// A tracer delivering finished spans to `sink`, counting into
    /// `counters` (pass the same handle given to the sinks so one snapshot
    /// covers the whole chain).
    pub fn new(sink: Arc<dyn SpanSink>, counters: Arc<ObsCounters>) -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                epoch: Instant::now(),
                sink,
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                counters,
            }),
        }
    }

    /// Opens a new trace with a root span named `name`.
    pub fn root(&self, name: &'static str) -> Span {
        let trace_id = self.shared.next_trace.fetch_add(1, Ordering::Relaxed);
        Span::open(Arc::clone(&self.shared), trace_id, None, name)
    }

    /// Opens a root span under a caller-supplied trace id — wire trace
    /// propagation: the id parsed from an inbound `traceparent` header
    /// becomes this process's trace id, so client, front door, and engine
    /// spans stitch into one trace.
    pub fn root_for_trace(&self, name: &'static str, trace_id: u64) -> Span {
        Span::open(Arc::clone(&self.shared), trace_id, None, name)
    }

    /// The shared overhead counters.
    pub fn counters(&self) -> &Arc<ObsCounters> {
        &self.shared.counters
    }
}

/// One span of work. Created from a [`Tracer`] (roots) or a parent span
/// ([`Span::child`]); finished explicitly with [`Span::finish`] or
/// implicitly on drop — a panic or early return can never lose a span.
pub struct Span {
    shared: Arc<TracerShared>,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    attrs: Vec<Attr>,
    error: bool,
    finished: bool,
}

impl Span {
    fn open(
        shared: Arc<TracerShared>,
        trace_id: u64,
        parent_id: Option<u64>,
        name: &'static str,
    ) -> Span {
        let span_id = shared.next_span.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let start_us = start.duration_since(shared.epoch).as_micros() as u64;
        Span {
            shared,
            trace_id,
            span_id,
            parent_id,
            name,
            start,
            start_us,
            attrs: Vec::new(),
            error: false,
            finished: false,
        }
    }

    /// Opens a child span. Children may be created from any thread holding
    /// a reference to the parent; they finish independently.
    pub fn child(&self, name: &'static str) -> Span {
        Span::open(
            Arc::clone(&self.shared),
            self.trace_id,
            Some(self.span_id),
            name,
        )
    }

    /// Sets (appends) a typed attribute.
    pub fn set(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.attrs.push(Attr {
            key,
            value: value.into(),
        });
    }

    /// Marks the span as errored (failed stage, shed, deadline abort).
    /// Error roots are always kept by the sampler.
    pub fn set_error(&mut self) {
        self.error = true;
    }

    /// This span's trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// This span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Finishes the span now, delivering it to the sink. Dropping without
    /// calling this finishes it too; `finish` just makes the point explicit
    /// at call sites.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let record = SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
            error: self.error,
            attrs: std::mem::take(&mut self.attrs),
        };
        self.shared
            .counters
            .spans_finished
            .fetch_add(1, Ordering::Relaxed);
        self.shared.sink.record(record);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // A span dropped mid-unwind never reached its normal finish path;
        // mark it errored so the sampler keeps the trace that explains the
        // panic.
        if !self.finished && std::thread::panicking() {
            self.error = true;
        }
        self.finish_inner();
    }
}

/// A clonable, thread-safe handle to a span whose owner and finisher live
/// on different threads — the cross-thread sibling of [`SpanCtx`].
///
/// The serving front door needs this shape: a connection thread opens a
/// `net` root span, hands it to an engine worker (which opens the `serve`
/// child under it), and only finishes the root once the response is on the
/// wire. Every operation locks briefly; after [`SharedSpan::finish`] (or
/// the last clone dropping) further calls are no-ops, so a worker holding
/// a stale handle can never resurrect a finished span.
#[derive(Clone)]
pub struct SharedSpan {
    inner: Arc<Mutex<Option<Span>>>,
}

impl SharedSpan {
    /// Wraps an open span for cross-thread sharing.
    pub fn new(span: Span) -> Self {
        SharedSpan {
            inner: Arc::new(Mutex::new(Some(span))),
        }
    }

    /// Opens a child of the shared span, or `None` if it already finished.
    pub fn child(&self, name: &'static str) -> Option<Span> {
        self.lock().as_ref().map(|s| s.child(name))
    }

    /// The trace id, or `None` if the span already finished.
    pub fn trace_id(&self) -> Option<u64> {
        self.lock().as_ref().map(|s| s.trace_id())
    }

    /// Appends a typed attribute (no-op after finish).
    pub fn set(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(s) = self.lock().as_mut() {
            s.set(key, value);
        }
    }

    /// Marks the span errored (no-op after finish).
    pub fn set_error(&self) {
        if let Some(s) = self.lock().as_mut() {
            s.set_error();
        }
    }

    /// Finishes the span now, across every clone of the handle.
    pub fn finish(&self) {
        if let Some(s) = self.lock().take() {
            s.finish();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Span>> {
        // Recover from poisoning: spans finish inside drop guards where a
        // second panic would abort.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A `Copy` tracing context threaded through the pipeline. Empty when
/// tracing is off — every operation is then a no-op branch, so untraced
/// requests pay nothing.
#[derive(Clone, Copy, Default)]
pub struct SpanCtx<'a> {
    span: Option<&'a Span>,
}

impl<'a> SpanCtx<'a> {
    /// An empty (disabled) context.
    pub fn none() -> Self {
        SpanCtx { span: None }
    }

    /// A context rooted at `span`: children created through it become
    /// `span`'s children.
    pub fn of(span: &'a Span) -> Self {
        SpanCtx { span: Some(span) }
    }

    /// Whether tracing is active.
    pub fn enabled(&self) -> bool {
        self.span.is_some()
    }

    /// Opens a child span of the context's span, or `None` when disabled.
    pub fn child(&self, name: &'static str) -> Option<Span> {
        self.span.map(|s| s.child(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn tracer() -> (Tracer, Arc<MemorySink>, Arc<ObsCounters>) {
        let counters = Arc::new(ObsCounters::default());
        let sink = Arc::new(MemorySink::new(1024, Arc::clone(&counters)));
        let tracer = Tracer::new(sink.clone() as Arc<dyn SpanSink>, Arc::clone(&counters));
        (tracer, sink, counters)
    }

    #[test]
    fn spans_nest_and_record_on_finish() {
        let (tracer, sink, _) = tracer();
        let mut root = tracer.root("serve");
        root.set("db", "concert_singer");
        root.set("request", 7u64);
        let root_id = root.span_id();
        let child = root.child("execute");
        assert_eq!(child.trace_id(), root.trace_id());
        child.finish();
        root.finish();
        let records = sink.records();
        assert_eq!(records.len(), 2);
        // Children finish before their parents.
        assert_eq!(records[0].name, "execute");
        assert_eq!(records[0].parent_id, Some(root_id));
        assert_eq!(records[1].name, "serve");
        assert_eq!(records[1].parent_id, None);
        assert_eq!(
            records[1].attr("db"),
            Some(&AttrValue::Str("concert_singer".into()))
        );
        assert_eq!(records[1].attr("request"), Some(&AttrValue::Int(7)));
    }

    #[test]
    fn drop_finishes_unfinished_spans() {
        let (tracer, sink, counters) = tracer();
        {
            let mut span = tracer.root("work");
            span.set_error();
            // No finish(): an early return / `?` would look like this.
        }
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert!(records[0].error);
        assert_eq!(counters.snapshot().spans_finished, 1);
    }

    #[test]
    fn panic_does_not_lose_spans() {
        let (tracer, sink, _) = tracer();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let root = tracer.root("serve");
            let _stage = root.child("verify");
            panic!("verifier exploded");
        }));
        assert!(result.is_err());
        let records = sink.records();
        assert_eq!(records.len(), 2, "both spans survived the panic");
        assert!(records.iter().any(|r| r.name == "verify"));
        assert!(records.iter().any(|r| r.name == "serve"));
        assert!(
            records.iter().all(|r| r.error),
            "spans dropped during unwind are marked errored"
        );
    }

    #[test]
    fn timestamps_are_monotonic_and_nested() {
        let (tracer, sink, _) = tracer();
        let root = tracer.root("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let inner = root.child("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        inner.finish();
        root.finish();
        let records = sink.records();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        assert!(inner.start_us >= outer.start_us);
        assert!(
            inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us,
            "child interval nests inside parent"
        );
        assert!(outer.dur_us >= 4_000, "outer saw both sleeps");
    }

    #[test]
    fn concurrent_children_get_unique_ids() {
        let (tracer, sink, _) = tracer();
        let root = tracer.root("serve");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let root = &root;
                scope.spawn(move || {
                    for _ in 0..50 {
                        root.child("stage").finish();
                    }
                });
            }
        });
        root.finish();
        let records = sink.records();
        assert_eq!(records.len(), 8 * 50 + 1);
        let mut ids: Vec<u64> = records.iter().map(|r| r.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8 * 50 + 1, "no id collisions");
    }

    #[test]
    fn shared_span_nests_across_threads_and_finishes_once() {
        let (tracer, sink, _) = tracer();
        let shared = SharedSpan::new(tracer.root("net"));
        shared.set("remote", "127.0.0.1:9");
        let worker = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let child = shared.child("serve").expect("parent still open");
                child.finish();
            })
        };
        worker.join().unwrap();
        shared.finish();
        // Idempotent: a second finish and post-finish operations are no-ops.
        shared.finish();
        shared.set("late", true);
        assert!(shared.child("late").is_none());
        let records = sink.records();
        assert_eq!(records.len(), 2);
        let child = records.iter().find(|r| r.name == "serve").unwrap();
        let root = records.iter().find(|r| r.name == "net").unwrap();
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(
            root.attr("remote"),
            Some(&AttrValue::Str("127.0.0.1:9".into()))
        );
        assert!(root.attr("late").is_none(), "post-finish set dropped");
    }

    #[test]
    fn disabled_ctx_is_free_and_silent() {
        let ctx = SpanCtx::none();
        assert!(!ctx.enabled());
        assert!(ctx.child("anything").is_none());
        let counters = ObsCounters::default();
        let s = counters.snapshot();
        assert_eq!(s.spans_finished, 0);
        assert_eq!(s.spans_emitted, 0);
        assert_eq!(s.spans_dropped, 0);
    }
}
