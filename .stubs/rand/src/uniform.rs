//! `gen_range` sampling identical to rand 0.8's `UniformInt` /
//! `UniformFloat` single-sample paths.

use crate::{RngCore, Standard};
use std::ops::{Range, RangeInclusive};

pub trait SampleUniform: Sized {}

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply: (high word, low word).
pub trait WideMul: Copy {
    fn wmul(self, b: Self) -> (Self, Self);
}

impl WideMul for u32 {
    fn wmul(self, b: u32) -> (u32, u32) {
        let t = (self as u64).wrapping_mul(b as u64);
        ((t >> 32) as u32, t as u32)
    }
}
impl WideMul for u64 {
    fn wmul(self, b: u64) -> (u64, u64) {
        let t = (self as u128).wrapping_mul(b as u128);
        ((t >> 64) as u64, t as u64)
    }
}
impl WideMul for usize {
    fn wmul(self, b: usize) -> (usize, usize) {
        let (hi, lo) = (self as u64).wmul(b as u64);
        (hi as usize, lo as usize)
    }
}

macro_rules! uniform_int {
    ($ty:ty, $uty:ty, $ularge:ty) => {
        impl SampleUniform for $ty {}

        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "gen_range: low >= high");
                let range = high.wrapping_sub(low) as $uty as $ularge;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $ularge = <$ularge as Standard>::standard(rng);
                    let (hi, lo) = WideMul::wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $ularge;
                if range == 0 {
                    // Full integer domain: any value works.
                    return <$ularge as Standard>::standard(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $ularge = <$ularge as Standard>::standard(rng);
                    let (hi, lo) = WideMul::wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int!(i32, u32, u32);
uniform_int!(u32, u32, u32);
uniform_int!(i64, u64, u64);
uniform_int!(u64, u64, u64);
uniform_int!(isize, usize, usize);
uniform_int!(usize, usize, usize);

macro_rules! uniform_float {
    ($ty:ty, $bits_to_discard:expr) => {
        impl SampleUniform for $ty {}

        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                debug_assert!(low < high, "gen_range: low >= high");
                let mut scale = high - low;
                assert!(scale >= 0.0, "gen_range: range overflow");
                loop {
                    // Value in [1, 2) from 52 random mantissa bits, minus 1.
                    let value1_2 = <$ty>::from_bits(
                        (1023u64 << 52) | (rng.next_u64() >> $bits_to_discard),
                    );
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding pushed res to high: retry one ulp down
                    // (rand's decrease_masked).
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                debug_assert!(low <= high, "gen_range: low > high");
                let scale = high - low;
                assert!(scale >= 0.0, "gen_range: range overflow");
                // rand 0.8's float sample_single_inclusive: one draw, no
                // rejection loop.
                let value1_2 =
                    <$ty>::from_bits((1023u64 << 52) | (rng.next_u64() >> $bits_to_discard));
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    };
}

uniform_float!(f64, 12);
