/root/repo/target/release/deps/cyclesql_integration-392c5913296df1c5.d: tests/lib.rs

/root/repo/target/release/deps/libcyclesql_integration-392c5913296df1c5.rlib: tests/lib.rs

/root/repo/target/release/deps/libcyclesql_integration-392c5913296df1c5.rmeta: tests/lib.rs

tests/lib.rs:
