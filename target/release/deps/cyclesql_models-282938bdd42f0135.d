/root/repo/target/release/deps/cyclesql_models-282938bdd42f0135.d: crates/models/src/lib.rs crates/models/src/error_ops.rs crates/models/src/profile.rs crates/models/src/simulate.rs

/root/repo/target/release/deps/libcyclesql_models-282938bdd42f0135.rlib: crates/models/src/lib.rs crates/models/src/error_ops.rs crates/models/src/profile.rs crates/models/src/simulate.rs

/root/repo/target/release/deps/libcyclesql_models-282938bdd42f0135.rmeta: crates/models/src/lib.rs crates/models/src/error_ops.rs crates/models/src/profile.rs crates/models/src/simulate.rs

crates/models/src/lib.rs:
crates/models/src/error_ops.rs:
crates/models/src/profile.rs:
crates/models/src/simulate.rs:
