//! Minimal std-only serde_json stand-in backed by the serde stub's value
//! tree: real JSON printing (compact + pretty) and parsing, `json!`,
//! `to_value`/`from_str`/`to_string`/`to_string_pretty`.

pub use serde::__value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.__jv())
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::__from_jv(&value).map_err(Error)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.__jv(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.__jv(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::__from_jv(&v).map_err(Error)
}

// ---- printing --------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match n {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"))
            } else {
                out.push_str("null")
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {} at {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    m.insert(k, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error(format!("bad object at {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {:?} at {}", other, self.pos))),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error("bad \\u".into()))?,
                            )
                            .map_err(|_| Error("bad \\u".into()))?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u".into()))?;
                            // Surrogate pairs: read the low half if present.
                            if (0xD800..0xDC00).contains(&cp) {
                                let lo_hex = std::str::from_utf8(
                                    self.bytes
                                        .get(self.pos + 7..self.pos + 11)
                                        .ok_or_else(|| Error("bad surrogate".into()))?,
                                )
                                .map_err(|_| Error("bad surrogate".into()))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| Error("bad surrogate".into()))?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or_else(|| Error("bad cp".into()))?);
                                self.pos += 10;
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| Error("bad cp".into()))?,
                                );
                                self.pos += 4;
                            }
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("bad utf8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error(format!("bad number {text}")))
    }
}

// ---- json! macro -----------------------------------------------------------

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).unwrap() ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $crate::to_value(&$val).unwrap()); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}
