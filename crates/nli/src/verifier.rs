//! Verifier implementations: the trained NLI verifier plus the two
//! "strawman" verifiers of Table III (a prompted-LLM stand-in and a
//! pre-built generic NLI model stand-in).

use crate::features::extract_features;
use crate::model::NliModel;
use cyclesql_explain::ExplanationFacets;
use serde::{Deserialize, Serialize};

/// Everything a verifier may read: the premise (explanation text + facets +
/// SQL) and the hypothesis (the NL question). Gold data is *not* available.
#[derive(Debug, Clone)]
pub struct VerifyInput<'a> {
    /// The NL question (hypothesis).
    pub question: &'a str,
    /// The explanation text (premise body).
    pub premise_text: &'a str,
    /// Structured facets of the premise.
    pub facets: &'a ExplanationFacets,
    /// The candidate SQL (the premise's third `|` segment).
    pub sql: &'a str,
}

/// A verification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether the premise entails the question.
    pub entails: bool,
    /// The verifier's confidence in entailment, in `[0, 1]`.
    pub score: f64,
}

/// Common interface for NLI-style verifiers.
pub trait Verifier: Send + Sync {
    /// Judges whether the explanation entails the question.
    fn verify(&self, input: &VerifyInput<'_>) -> Verdict;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's dedicated verifier: the focal-loss-trained linear NLI model
/// over entailment features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedVerifier {
    /// The trained model.
    pub model: NliModel,
}

impl Verifier for TrainedVerifier {
    fn verify(&self, input: &VerifyInput<'_>) -> Verdict {
        let features = extract_features(input.question, input.premise_text, input.facets);
        let score = self.model.score(&features);
        Verdict { entails: score >= self.model.threshold, score }
    }

    fn name(&self) -> &'static str {
        "trained-nli"
    }
}

/// Strawman 1: a 5-shot prompted LLM as verifier (Table III, "LLM
/// verifier"). Modeled as a capable but shallow judge: it leans on lexical
/// overlap and the most salient intent cue (aggregate match), with a
/// deterministic pseudo-noise term standing in for sampling variance.
/// "Capable straight out of the box, but below the dedicated model."
#[derive(Debug, Clone, Default)]
pub struct LlmStrawmanVerifier;

impl Verifier for LlmStrawmanVerifier {
    fn verify(&self, input: &VerifyInput<'_>) -> Verdict {
        let features = extract_features(input.question, input.premise_text, input.facets);
        // Shallow read: text overlap (23), count agreement (0), value
        // grounding (10), empty-result sanity (21).
        let score_raw = 0.45 * features[23] + 0.25 * features[0] + 0.20 * features[10]
            + 0.10 * features[21];
        // Deterministic "sampling noise" from the premise hash.
        let h = fxhash(input.premise_text) ^ fxhash(input.question);
        let noise = ((h >> 17) % 1000) as f64 / 1000.0 - 0.5;
        let score = ((score_raw + 1.0) / 2.0 + noise * 0.18).clamp(0.0, 1.0);
        Verdict { entails: score >= 0.45, score }
    }

    fn name(&self) -> &'static str {
        "llm-strawman"
    }
}

/// Strawman 2: an off-the-shelf pre-built NLI model (Table III, SemBERT).
/// Pre-trained on natural sentence pairs, it is mis-calibrated for
/// machine-generated explanation text: it keys on surface overlap, is
/// confused by the `|`-separated premise format, and systematically rejects
/// long mechanical premises — the paper observes it *hurts* the base model.
#[derive(Debug, Clone, Default)]
pub struct PrebuiltNliVerifier;

impl Verifier for PrebuiltNliVerifier {
    fn verify(&self, input: &VerifyInput<'_>) -> Verdict {
        let features = extract_features(input.question, input.premise_text, input.facets);
        // Only the generic overlap signal, with a strong length penalty
        // (machine-generated premises are long) and a high threshold.
        let words = input.premise_text.split_whitespace().count() as f64;
        let length_penalty = (words / 60.0).min(1.0) * 0.5;
        let score = (((features[23] + 1.0) / 2.0) - length_penalty
            + ((fxhash(input.question) % 100) as f64 / 100.0 - 0.5) * 0.3)
            .clamp(0.0, 1.0);
        Verdict { entails: score >= 0.55, score }
    }

    fn name(&self) -> &'static str {
        "prebuilt-nli"
    }
}

/// A verifier that accepts everything — with this, CycleSQL degenerates to
/// the base model's top-1 output (used by invariant tests).
#[derive(Debug, Clone, Default)]
pub struct AlwaysAcceptVerifier;

impl Verifier for AlwaysAcceptVerifier {
    fn verify(&self, _input: &VerifyInput<'_>) -> Verdict {
        Verdict { entails: true, score: 1.0 }
    }

    fn name(&self) -> &'static str {
        "always-accept"
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_sql::AggFunc;

    fn facets_count() -> ExplanationFacets {
        ExplanationFacets {
            agg_funcs: vec![(AggFunc::Count, None)],
            num_columns: 1,
            num_rows: 1,
            result_values: vec!["4".into()],
            ..Default::default()
        }
    }

    #[test]
    fn strawmen_are_deterministic() {
        let facets = facets_count();
        let input = VerifyInput {
            question: "How many flights are there?",
            premise_text: "there are 4 flights in total",
            facets: &facets,
            sql: "SELECT count(*) FROM flight",
        };
        let llm = LlmStrawmanVerifier;
        assert_eq!(llm.verify(&input), llm.verify(&input));
        let pre = PrebuiltNliVerifier;
        assert_eq!(pre.verify(&input), pre.verify(&input));
    }

    #[test]
    fn always_accept_accepts() {
        let facets = facets_count();
        let input = VerifyInput {
            question: "anything",
            premise_text: "whatever",
            facets: &facets,
            sql: "SELECT 1 FROM t",
        };
        assert!(AlwaysAcceptVerifier.verify(&input).entails);
    }

    #[test]
    fn prebuilt_rejects_long_mechanical_premises() {
        let facets = facets_count();
        let long_premise = "word ".repeat(80);
        let input = VerifyInput {
            question: "How many flights are there?",
            premise_text: &long_premise,
            facets: &facets,
            sql: "SELECT count(*) FROM flight",
        };
        assert!(!PrebuiltNliVerifier.verify(&input).entails);
    }

    #[test]
    fn verdict_scores_bounded() {
        let facets = facets_count();
        let input = VerifyInput {
            question: "How many flights go to Tokyo from Los Angeles today?",
            premise_text: "there are 4 flights in total, filtered by destination",
            facets: &facets,
            sql: "SELECT count(*) FROM flight",
        };
        for v in [
            LlmStrawmanVerifier.verify(&input),
            PrebuiltNliVerifier.verify(&input),
        ] {
            assert!((0.0..=1.0).contains(&v.score));
        }
    }
}

/// A trained verifier with selected features zeroed out — the harness for
/// feature-group ablations (which entailment signals carry the loop).
#[derive(Debug, Clone)]
pub struct MaskedNliVerifier {
    /// The underlying trained model.
    pub model: crate::model::NliModel,
    /// Feature indices forced to zero before scoring.
    pub masked: Vec<usize>,
}

impl Verifier for MaskedNliVerifier {
    fn verify(&self, input: &VerifyInput<'_>) -> Verdict {
        let mut features = extract_features(input.question, input.premise_text, input.facets);
        for &i in &self.masked {
            if i < features.len() {
                features[i] = 0.0;
            }
        }
        let score = self.model.score(&features);
        Verdict { entails: score >= self.model.threshold, score }
    }

    fn name(&self) -> &'static str {
        "masked-nli"
    }
}
