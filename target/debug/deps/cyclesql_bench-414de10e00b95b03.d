/root/repo/target/debug/deps/cyclesql_bench-414de10e00b95b03.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_bench-414de10e00b95b03.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
