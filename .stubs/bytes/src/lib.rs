//! Placeholder: declared in the workspace manifest but unused.
