/root/repo/target/debug/deps/crossbeam-60238a1967ddb11b.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-60238a1967ddb11b.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
