//! Cross-crate pipeline invariants: for every gold query of the quick dev
//! split, the full parse → execute → provenance → enrich → explain →
//! featurize chain holds the properties DESIGN.md commits to.

use cyclesql_core::experiments::ExperimentContext;
use cyclesql_explain::{enrich, generate_explanation};
use cyclesql_nli::{extract_features, FEATURE_DIM};
use cyclesql_provenance::track_provenance;
use cyclesql_sql::{decompose, parse, AggFunc, Expr, FuncArg, SelectItem};
use cyclesql_storage::{execute, Value};

#[test]
fn full_pipeline_invariants_over_dev_split() {
    let ctx = ExperimentContext::shared_quick();
    let mut explained = 0usize;
    for item in &ctx.spider.dev {
        let db = ctx.spider.database(item);
        let query = parse(&item.gold_sql).expect("gold parses");
        let result = execute(db, &query).expect("gold executes");
        let prov = track_provenance(db, &query, &result, 0).expect("provenance tracks");

        // Rewrite soundness for un-grouped count(*) queries: the provenance
        // cardinality equals the count value.
        if let Some(SelectItem::Expr {
            expr: Expr::Agg { func: AggFunc::Count, arg: FuncArg::Star, .. },
            ..
        }) = query.leading_select().projections.first()
        {
            if query.leading_select().group_by.is_empty()
                && !query.body.has_set_op()
                && !prov.empty_result
            {
                if let Some(Value::Int(n)) = result.rows.first().and_then(|r| r.first()).cloned()
                {
                    assert_eq!(
                        prov.table.len() as i64,
                        n,
                        "{}: provenance must witness the count",
                        item.id
                    );
                }
            }
        }

        // Enrichment totality: every decomposed unit is anchored.
        let enriched = enrich(&query, &prov.table);
        assert_eq!(
            enriched.annotations.len(),
            decompose(&query).len(),
            "{}: annotation dropped",
            item.id
        );

        // Explanation groundedness: every value quoted by the explanation
        // occurs in the provenance table, the result, or the query itself.
        let explanation = generate_explanation(db, &query, &result, 0, &prov);
        let mut pool: Vec<String> = Vec::new();
        for row in &prov.table.rows {
            pool.extend(row.values.iter().map(|v| v.to_string()));
        }
        for row in &result.rows {
            pool.extend(row.iter().map(|v| v.to_string()));
        }
        pool.push(item.gold_sql.clone());
        // Scalar-subquery comparisons ground their nested value by executing
        // the subquery — include those values in the pool.
        if let Some(w) = &query.leading_select().where_clause {
            for sub in w.subqueries() {
                if let Ok(r) = execute(db, sub) {
                    for row in &r.rows {
                        pool.extend(row.iter().map(|v| v.to_string()));
                    }
                }
            }
        }
        for v in &explanation.grounded_values {
            assert!(
                pool.iter().any(|p| p == v || p.contains(v.as_str())),
                "{}: ungrounded value {v:?} in explanation {:?}",
                item.id,
                explanation.text
            );
        }

        // The summary follows the paper's template.
        assert!(
            explanation.summary.starts_with("The query returns a result set with"),
            "{}: {}",
            item.id,
            explanation.summary
        );

        // Feature extraction is total and fixed-dimension.
        let f = extract_features(&item.question, &explanation.text, &explanation.facets);
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|x| x.is_finite()));

        explained += 1;
    }
    assert!(explained > 30, "dev split too small: {explained}");
}

#[test]
fn premise_always_has_three_segments() {
    let ctx = ExperimentContext::shared_quick();
    for item in ctx.spider.dev.iter().take(25) {
        let db = ctx.spider.database(item);
        let query = parse(&item.gold_sql).unwrap();
        let result = execute(db, &query).unwrap();
        let prov = track_provenance(db, &query, &result, 0).unwrap();
        let e = generate_explanation(db, &query, &result, 0, &prov);
        let premise = e.premise(&item.gold_sql);
        assert_eq!(premise.split(" | ").count(), 3, "{}", item.id);
    }
}

#[test]
fn provenance_rows_satisfy_simple_equality_filters() {
    let ctx = ExperimentContext::shared_quick();
    for item in &ctx.spider.dev {
        // Only plain single-table equality filters are easy to re-check.
        if item.template != "lookup_num" {
            continue;
        }
        let db = ctx.spider.database(item);
        let query = parse(&item.gold_sql).unwrap();
        let result = execute(db, &query).unwrap();
        let prov = track_provenance(db, &query, &result, 0).unwrap();
        if prov.empty_result {
            continue;
        }
        // Extract the filter value from the SQL text.
        let value = item.gold_sql.split('\'').nth(1).expect("filter literal");
        for row in &prov.table.rows {
            assert!(
                row.values.iter().any(|v| v.to_string() == value),
                "{}: provenance row {:?} misses filter witness {value}",
                item.id,
                row.tuple_id
            );
        }
    }
}
