/root/repo/target/debug/deps/cyclesql_integration-051c146fdf16c6a6.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_integration-051c146fdf16c6a6.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
