//! EXPLAIN ANALYZE counter parity between the row-at-a-time engine and the
//! columnar batch engine, over the same four plan classes the golden test
//! pins (join, group/aggregate, set operation, subquery prologue).
//!
//! The columnar engine accumulates each operator's in/out/cmp/hash
//! counters across chunks, so the profile must be *identical* to the row
//! engine's — for every batch size, including degenerate one-row chunks
//! and chunk sizes that split operators mid-stream. Engines are compared
//! to each other (not to pinned constants), so the assertions hold on any
//! generated database.
//!
//! The same invariance holds for the morsel pool: counters sum per
//! operator across morsels in morsel-index order, so the profile is also
//! *thread-count* invariant — every (batch size × worker count) cell of
//! the sweep must render the identical timing-free profile.

use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
use cyclesql_sql::parse;
use cyclesql_storage::{compile, Database, ExecOpts};

/// Chunk sizes that exercise the interesting boundaries: one row per
/// batch, sizes that split every operator mid-stream, and one larger than
/// any table (single chunk, the default regime).
const CHUNK_SWEEP: [usize; 4] = [1, 3, 7, 1024];

/// Morsel-pool widths crossed with [`CHUNK_SWEEP`]: the single-threaded
/// baseline, undersubscribed, and more workers than morsels.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The same pinned world_1 variant the golden plan test uses.
fn world() -> Database {
    let suite = build_spider_suite(
        Variant::Spider,
        SuiteConfig {
            seed: 0x601D,
            train_per_template: 1,
            eval_per_template: 1,
        },
    );
    suite
        .database_variant("world_1", 1)
        .expect("world_1 domain exists")
}

/// Asserts the columnar profile equals the row profile at every swept
/// batch size: same operator steps, same in/out/cmp/hash counters, same
/// prologue subquery measurements, and the same result.
fn assert_counter_parity(db: &Database, sql: &str) {
    let query = parse(sql).expect("query parses");
    let plan = compile(db, &query).expect("query compiles");
    let (row_out, row_prof) = plan.run_rowwise_analyzed(db).expect("row engine runs");
    let row_render = row_prof.render(false);
    for chunk in CHUNK_SWEEP {
        let (col_out, col_prof) = plan
            .run_batched_analyzed(db, chunk)
            .expect("columnar engine runs");
        for threads in THREAD_SWEEP {
            let opts = ExecOpts {
                batch_rows: chunk,
                threads,
                ..ExecOpts::default()
            };
            let (_, par_prof) = plan
                .run_opts_analyzed(db, &opts)
                .expect("parallel columnar engine runs");
            assert_eq!(
                row_render,
                par_prof.render(false),
                "profile diverges at {threads} threads, batch size {chunk}: {sql}"
            );
        }
        // The timing-free rendering covers step shapes, operator order,
        // and every in/out/cmp/hash counter in one comparison.
        assert_eq!(
            row_render,
            col_prof.render(false),
            "profile diverges at batch size {chunk}: {sql}"
        );
        assert_eq!(
            row_prof.ops.len(),
            col_prof.ops.len(),
            "operator count diverges at batch size {chunk}: {sql}"
        );
        for (r, c) in row_prof.ops.iter().zip(&col_prof.ops) {
            assert_eq!(r.rows_in, c.rows_in, "rows_in at batch size {chunk}: {sql}");
            assert_eq!(
                r.rows_out, c.rows_out,
                "rows_out at batch size {chunk}: {sql}"
            );
            assert_eq!(
                r.comparisons, c.comparisons,
                "comparisons at batch size {chunk}: {sql}"
            );
            assert_eq!(
                r.hash_entries, c.hash_entries,
                "hash_entries at batch size {chunk}: {sql}"
            );
        }
        assert_eq!(
            row_prof.prologue.len(),
            col_prof.prologue.len(),
            "prologue count at batch size {chunk}: {sql}"
        );
        for (r, c) in row_prof.prologue.iter().zip(&col_prof.prologue) {
            assert_eq!(r.index, c.index, "prologue index: {sql}");
            assert_eq!(r.kind, c.kind, "prologue kind: {sql}");
            assert_eq!(r.rows, c.rows, "prologue rows: {sql}");
        }
        // The profiled run is the real run: results must match too.
        assert_eq!(
            format!("{:?}", row_out.result.rows),
            format!("{:?}", col_out.result.rows),
            "rows diverge at batch size {chunk}: {sql}"
        );
        assert_eq!(
            row_out.lineage, col_out.lineage,
            "lineage diverges at batch size {chunk}: {sql}"
        );
    }
}

#[test]
fn join_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT T1.name, T2.name FROM country AS T1 JOIN city AS T2 \
         ON T1.code = T2.countrycode ORDER BY T1.name LIMIT 5",
    );
}

#[test]
fn aggregate_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT continent, count(*) FROM country GROUP BY continent",
    );
}

#[test]
fn set_op_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(&db, "SELECT name FROM country UNION SELECT name FROM city");
}

#[test]
fn subquery_prologue_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT name FROM country WHERE code IN (SELECT countrycode FROM city)",
    );
}

#[test]
fn nested_loop_and_distinct_counters_are_batch_size_invariant() {
    // A non-equi join forces the nested-loop strategy; DISTINCT and a
    // filter exercise the remaining batch kernels in one plan.
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT DISTINCT T1.continent FROM country AS T1 JOIN city AS T2 \
         ON T1.population > T2.population WHERE T2.population > 1000000",
    );
}

#[test]
fn cte_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "WITH big AS (SELECT code, name FROM country WHERE population > 1000000) \
         SELECT count(*) FROM big",
    );
}

#[test]
fn case_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT name, CASE WHEN population > 1000000 THEN 'big' ELSE 'small' END \
         FROM country ORDER BY name LIMIT 5",
    );
}

#[test]
fn outer_join_counters_are_batch_size_invariant() {
    let db = world();
    assert_counter_parity(
        &db,
        "SELECT T1.name, T2.name FROM country AS T1 FULL OUTER JOIN city AS T2 \
         ON T1.code = T2.countrycode ORDER BY T1.name, T2.name LIMIT 10",
    );
}
