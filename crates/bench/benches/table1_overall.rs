//! Criterion bench for Table I: one base-vs-CycleSQL evaluation of a model
//! over the SPIDER dev split (the table's core measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesql_core::experiments::{table1, ExperimentContext};
use cyclesql_models::{ModelProfile, SimulatedModel};

fn bench_table1(c: &mut Criterion) {
    let ctx = ExperimentContext::shared_quick();
    let mut group = c.benchmark_group("table1_overall");
    group.sample_size(10);
    for profile in [ModelProfile::resdsql_3b(), ModelProfile::gpt35()] {
        let model = SimulatedModel::new(profile);
        let name = model.profile.name.to_string();
        // Print the paired dev result once.
        let rows = table1::run_dev_only(ctx, std::slice::from_ref(&model));
        let (_, pair) = &rows[0];
        eprintln!(
            "table1: {name} dev EX base={:.1} cycle={:.1}",
            pair.base.ex, pair.cycle.ex
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| table1::run_dev_only(ctx, std::slice::from_ref(m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
