//! Spider difficulty ("hardness") classification.
//!
//! Re-implements the spirit of the official Spider evaluation script's
//! hardness buckets: queries are scored by counting SQL components and
//! bucketed into Easy / Medium / Hard / Extra-Hard. The official script
//! counts "component1" (WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR, LIKE)
//! and "component2" (EXCEPT, UNION, INTERSECT, nested subqueries) occurrences
//! plus "others" (aggregates beyond the first, multiple select columns,
//! multiple WHERE conditions, multiple GROUP BY keys).

use crate::ast::*;
use serde::{Deserialize, Serialize};

#[allow(missing_docs)] // variant/field names are self-describing
/// Spider hardness bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    Easy,
    Medium,
    Hard,
    ExtraHard,
}

impl Difficulty {
    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Easy => "Easy",
            Difficulty::Medium => "Medium",
            Difficulty::Hard => "Hard",
            Difficulty::ExtraHard => "Extra Hard",
        }
    }

    /// All buckets, easiest first.
    pub const ALL: [Difficulty; 4] =
        [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard, Difficulty::ExtraHard];
}

/// Component counts used by the hardness rules. Exposed for tests and for
/// benchmark generation (which targets specific difficulty mixes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ComponentCounts {
    /// WHERE / GROUP BY / ORDER BY / LIMIT / JOIN / OR / LIKE occurrences.
    pub comp1: usize,
    /// Set ops and nested subqueries.
    pub comp2: usize,
    /// "Others": extra aggregates, extra select columns, extra WHERE
    /// conditions, extra GROUP BY keys.
    pub others: usize,
}

/// Counts hardness components for a query.
pub fn component_counts(q: &Query) -> ComponentCounts {
    let mut c = ComponentCounts::default();
    count_query(q, &mut c, true);
    c
}

fn count_query(q: &Query, c: &mut ComponentCounts, top_level: bool) {
    // A CTE is a nested query the same way a subquery is: count the
    // definition as a component2 and fold in its body's components.
    for cte in &q.ctes {
        c.comp2 += 1;
        count_query(&cte.query, c, false);
    }
    if !q.order_by.is_empty() {
        c.comp1 += 1;
    }
    if q.limit.is_some() {
        c.comp1 += 1;
    }
    count_body(&q.body, c, top_level);
}

fn count_body(body: &QueryBody, c: &mut ComponentCounts, top_level: bool) {
    match body {
        QueryBody::Select(core) => count_core(core, c, top_level),
        QueryBody::SetOp { left, right, .. } => {
            c.comp2 += 1;
            count_body(left, c, false);
            count_body(right, c, false);
        }
    }
}

fn count_core(core: &SelectCore, c: &mut ComponentCounts, top_level: bool) {
    if core.where_clause.is_some() {
        c.comp1 += 1;
    }
    if !core.group_by.is_empty() {
        c.comp1 += 1;
    }
    if !core.from.joins.is_empty() {
        c.comp1 += 1;
    }
    // Aggregates: each beyond the first counts as "other".
    let mut aggs = 0usize;
    for p in &core.projections {
        if let SelectItem::Expr { expr, .. } = p {
            expr.visit(&mut |e| {
                if matches!(e, Expr::Agg { .. }) {
                    aggs += 1;
                }
            });
        }
    }
    if let Some(h) = &core.having {
        h.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                aggs += 1;
            }
        });
    }
    if aggs > 1 {
        c.others += aggs - 1;
    }
    if core.projections.len() > 1 {
        c.others += 1;
    }
    if core.group_by.len() > 1 {
        c.others += 1;
    }
    if let Some(w) = &core.where_clause {
        let conjuncts = w.conjuncts();
        if conjuncts.len() > 1 {
            c.others += 1;
        }
        count_expr(w, c);
    }
    if let Some(h) = &core.having {
        c.comp1 += 1;
        count_expr(h, c);
    }
    let _ = top_level;
}

fn count_expr(e: &Expr, c: &mut ComponentCounts) {
    e.visit(&mut |sub| match sub {
        Expr::Binary { op: BinOp::Or, .. } => c.comp1 += 1,
        Expr::Like { .. } => c.comp1 += 1,
        Expr::Case { .. } => c.others += 1,
        _ => {}
    });
    for sq in e.subqueries() {
        c.comp2 += 1;
        let mut nested = ComponentCounts::default();
        count_query(sq, &mut nested, false);
        c.comp1 += nested.comp1;
        c.comp2 += nested.comp2;
        c.others += nested.others;
    }
}

/// Classifies a query into a Spider hardness bucket.
pub fn classify(q: &Query) -> Difficulty {
    let c = component_counts(q);
    // Rules adapted from the Spider evaluation script's `eval_hardness`.
    if c.comp1 <= 1 && c.others == 0 && c.comp2 == 0 {
        Difficulty::Easy
    } else if (c.others <= 2 && c.comp1 <= 1 && c.comp2 == 0)
        || (c.comp1 <= 2 && c.others < 2 && c.comp2 == 0)
    {
        Difficulty::Medium
    } else if (c.others > 2 && c.comp1 <= 2 && c.comp2 == 0)
        || (2 < c.comp1 && c.comp1 <= 3 && c.others <= 2 && c.comp2 == 0)
        || (c.comp1 <= 1 && c.others == 0 && c.comp2 <= 1)
    {
        Difficulty::Hard
    } else {
        Difficulty::ExtraHard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diff(sql: &str) -> Difficulty {
        classify(&parse(sql).unwrap())
    }

    #[test]
    fn trivial_select_is_easy() {
        assert_eq!(diff("SELECT name FROM singer"), Difficulty::Easy);
        assert_eq!(diff("SELECT count(*) FROM singer"), Difficulty::Easy);
        assert_eq!(
            diff("SELECT name FROM singer WHERE age > 20"),
            Difficulty::Easy
        );
    }

    #[test]
    fn join_with_filter_is_medium() {
        assert_eq!(
            diff(
                "SELECT T1.name FROM country AS T1 JOIN city AS T2 \
                 ON T1.code = T2.countrycode WHERE T2.pop > 100"
            ),
            Difficulty::Medium
        );
    }

    #[test]
    fn group_having_order_is_hard() {
        let d = diff(
            "SELECT count(T2.language), T1.name FROM country AS T1 \
             JOIN countrylanguage AS T2 ON T1.code = T2.countrycode \
             GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 3",
        );
        assert!(d >= Difficulty::Hard, "got {d:?}");
    }

    #[test]
    fn intersect_of_joins_is_extra_hard() {
        let d = diff(
            "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 \
             ON T1.code = T2.countrycode WHERE T2.language = 'English' \
             INTERSECT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 \
             ON T1.code = T2.countrycode WHERE T2.language = 'French'",
        );
        assert_eq!(d, Difficulty::ExtraHard);
    }

    #[test]
    fn simple_subquery_is_hard() {
        let d = diff(
            "SELECT name FROM country WHERE code IN \
             (SELECT countrycode FROM countrylanguage)",
        );
        assert_eq!(d, Difficulty::Hard);
    }

    #[test]
    fn nested_subquery_with_filters_is_extra_hard() {
        let d = diff(
            "SELECT DISTINCT T2.name FROM country AS T1 JOIN city AS T2 \
             ON T1.code = T2.countrycode WHERE T1.continent = 'Europe' \
             AND T1.name NOT IN (SELECT T3.name FROM country AS T3 \
             JOIN countrylanguage AS T4 ON T3.code = T4.countrycode \
             WHERE T4.isofficial = 'T' AND T4.language = 'English')",
        );
        assert_eq!(d, Difficulty::ExtraHard);
    }

    #[test]
    fn difficulty_ordering() {
        assert!(Difficulty::Easy < Difficulty::Medium);
        assert!(Difficulty::Hard < Difficulty::ExtraHard);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Difficulty::ExtraHard.label(), "Extra Hard");
    }
}
