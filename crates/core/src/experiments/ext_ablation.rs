//! Extension experiment: verifier feature-group ablation — which entailment
//! signals carry the feedback loop (the DESIGN.md ablation commitment, and
//! the paper's future-work note on "fine-grained semantics … during the
//! training of the NLI model").
//!
//! Each run zeroes one feature group at *both* training and inference time,
//! retrains the verifier on the identical collected examples, and measures
//! RESDSQL-3B's EX with the ablated loop.

use super::ExperimentContext;
use crate::cycle::{CycleSql, FeedbackKind, LoopVerifier};
use crate::eval::{evaluate, EvalMode, EvalOptions, Parallelism};
use crate::training::{collect_training_data, CollectConfig};
use cyclesql_benchgen::Split;
use cyclesql_models::{ModelProfile, SimulatedModel};
use cyclesql_nli::{MaskedNliVerifier, NliModel, TrainConfig};
use serde::Serialize;
use std::fmt::Write as _;

/// The ablated feature groups (indices into the feature vector).
pub fn feature_groups() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("aggregate agreement (f0-f6)", (0..=6).collect()),
        ("comparison operators (f7-f9)", (7..=9).collect()),
        ("value grounding (f10, f11, f25)", vec![10, 11, 25]),
        ("structure: negation/group/order/limit/setop (f12-f19)", (12..=19).collect()),
        ("lexical overlap (f20, f23)", vec![20, 23]),
        ("result sanity (f21, f22, f24)", vec![21, 22, 24]),
        ("no-mismatch indicator (f26)", vec![26]),
    ]
}

/// One ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// The removed group.
    pub removed: String,
    /// EX with the group removed (%).
    pub ex: f64,
    /// Drop relative to the full verifier (positive = the group mattered).
    pub delta_vs_full: f64,
}

/// The full ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct ExtAblationResult {
    /// EX with the full feature set.
    pub full_ex: f64,
    /// Base (no loop) EX.
    pub base_ex: f64,
    /// One row per removed group.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation on RESDSQL-3B over the SPIDER dev split.
pub fn run(ctx: &ExperimentContext) -> ExtAblationResult {
    let model = SimulatedModel::new(ModelProfile::resdsql_3b());
    let eval_with = |cycle: Option<&CycleSql>| {
        evaluate(
            &model,
            &EvalOptions {
                session: &ctx.spider,
                split: Split::Dev,
                mode: if cycle.is_some() { EvalMode::CycleSql } else { EvalMode::Base },
                cycle,
                k: None,
                compute_ts: false,
                parallelism: Parallelism::Auto,
            },
        )
        .ex
    };
    let base_ex = eval_with(None);
    let full_ex = eval_with(Some(&ctx.cycle()));

    // Collect the training examples once; each ablation masks and retrains.
    let error_sources = vec![
        SimulatedModel::new(ModelProfile::smbop()),
        SimulatedModel::new(ModelProfile::resdsql_large()),
        SimulatedModel::new(ModelProfile::gpt35()),
    ];
    let (examples, _) = collect_training_data(
        &ctx.spider,
        &error_sources,
        CollectConfig { feedback: FeedbackKind::DataGrounded, ..Default::default() },
    );

    let mut rows = Vec::new();
    for (label, masked) in feature_groups() {
        let mut masked_examples = examples.clone();
        for ex in &mut masked_examples {
            for &i in &masked {
                if i < ex.features.len() {
                    ex.features[i] = 0.0;
                }
            }
        }
        let (nli, _) = NliModel::train(&masked_examples, TrainConfig::default());
        let verifier = MaskedNliVerifier { model: nli, masked: masked.clone() };
        let cycle = CycleSql::new(LoopVerifier::Custom(Box::new(verifier)));
        let ex = eval_with(Some(&cycle));
        rows.push(AblationRow {
            removed: label.to_string(),
            ex,
            delta_vs_full: full_ex - ex,
        });
    }
    ExtAblationResult { full_ex, base_ex, rows }
}

impl ExtAblationResult {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Extension: verifier feature-group ablation (RESDSQL_3B, SPIDER dev)"
        );
        let _ = writeln!(
            out,
            "base EX = {:.1}%, full-verifier EX = {:.1}%",
            self.base_ex, self.full_ex
        );
        let _ = writeln!(out, "{:<55} {:>8} {:>8}", "removed group", "EX", "delta");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<55} {:>8.1} {:>+8.1}",
                r.removed, r.ex, -r.delta_vs_full
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_verifier_is_at_least_as_good_as_most_ablations() {
        let ctx = ExperimentContext::shared_quick();
        let r = run(ctx);
        // Ablations can tie (a redundant group) but the majority must not
        // beat the full verifier.
        let better = r.rows.iter().filter(|row| row.ex > r.full_ex + 1e-9).count();
        assert!(
            better <= r.rows.len() / 2,
            "most ablations should not beat the full feature set: {:?}",
            r.rows
        );
        // Every configuration still includes the loop's fallback, so no
        // ablation can fall catastrophically below base.
        for row in &r.rows {
            assert!(row.ex + 15.0 >= r.base_ex, "{row:?} vs base {}", r.base_ex);
        }
    }

    #[test]
    fn groups_cover_every_feature_except_bias() {
        let mut covered: Vec<usize> = feature_groups().into_iter().flat_map(|(_, g)| g).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, (0..=26).collect::<Vec<_>>());
    }
}
