//! Concurrency-determinism contract: the same request set pushed through
//! the serving engine with 1 worker and with N workers yields identical
//! per-request responses (accepted SQL, explanation text, result rows) and
//! identical counters modulo scheduling (the plan cache's hit/miss *split*
//! may shift when concurrent misses race on one key, but the total lookup
//! count may not). Tracing is part of the contract too: turning it on
//! changes no response, and the spans a traced run emits are
//! worker-count-invariant in count per stage.

use cyclesql_benchgen::{build_science_suite, build_spider_suite, BenchmarkItem, SuiteConfig, Variant};
use cyclesql_core::{CycleSql, LoopVerifier};
use cyclesql_models::{ModelProfile, SimulatedModel};
use cyclesql_nli::AlwaysAcceptVerifier;
use cyclesql_obs::{MemorySink, ObsCounters, SpanRecord, SpanSink, Tracer};
use cyclesql_serve::{
    AdmissionPolicy, Catalog, MetricsSnapshot, ServeConfig, ServeRequest, ServeResponse,
    ServiceEngine,
};
use std::sync::Arc;

fn quick() -> SuiteConfig {
    SuiteConfig { seed: 0xDE7E, train_per_template: 1, eval_per_template: 2 }
}

/// A mixed multi-database workload: spider and science dev items
/// interleaved, each question repeated once (so the plan cache sees hits).
fn workload() -> (Arc<Catalog>, Vec<Arc<BenchmarkItem>>) {
    let spider = build_spider_suite(Variant::Spider, quick());
    let science = build_science_suite(quick());
    let catalog = Arc::new(Catalog::from_suites([&spider, &science]));
    let mut items: Vec<Arc<BenchmarkItem>> = Vec::new();
    for pair in spider.dev.iter().take(12).zip(science.dev.iter().take(12)) {
        items.push(Arc::new(pair.0.clone()));
        items.push(Arc::new(pair.1.clone()));
    }
    let repeat = items.clone();
    items.extend(repeat);
    (catalog, items)
}

fn verifier(name: &str) -> LoopVerifier {
    match name {
        "oracle" => LoopVerifier::Oracle,
        "always-accept" => LoopVerifier::AlwaysAccept(AlwaysAcceptVerifier),
        other => panic!("unknown verifier {other}"),
    }
}

fn config_for(workers: usize, items: &[Arc<BenchmarkItem>]) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: items.len().max(1),
        policy: AdmissionPolicy::Block,
        ..ServeConfig::default()
    }
}

fn drain(engine: ServiceEngine, items: &[Arc<BenchmarkItem>]) -> (Vec<ServeResponse>, MetricsSnapshot) {
    // Submit everything up front (the queue holds the whole set), then
    // collect in submission order — responses stay index-aligned however
    // the workers interleave.
    let tickets: Vec<_> = items
        .iter()
        .map(|item| engine.submit(ServeRequest { item: Arc::clone(item) }).unwrap())
        .collect();
    let responses: Vec<ServeResponse> =
        tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    (responses, engine.shutdown())
}

fn run_with_workers(
    workers: usize,
    catalog: &Arc<Catalog>,
    items: &[Arc<BenchmarkItem>],
    verifier_name: &str,
) -> (Vec<ServeResponse>, MetricsSnapshot) {
    let engine = ServiceEngine::start(
        Arc::clone(catalog),
        SimulatedModel::new(ModelProfile::resdsql_3b()),
        CycleSql::new(verifier(verifier_name)),
        config_for(workers, items),
    );
    drain(engine, items)
}

fn run_traced(
    workers: usize,
    catalog: &Arc<Catalog>,
    items: &[Arc<BenchmarkItem>],
    verifier_name: &str,
    analyze: bool,
) -> (Vec<ServeResponse>, Vec<SpanRecord>) {
    let counters = Arc::new(ObsCounters::default());
    let sink = Arc::new(MemorySink::new(65_536, Arc::clone(&counters)));
    let tracer = Arc::new(Tracer::new(sink.clone() as Arc<dyn SpanSink>, counters));
    let engine = ServiceEngine::start_traced(
        Arc::clone(catalog),
        SimulatedModel::new(ModelProfile::resdsql_3b()),
        CycleSql::new(verifier(verifier_name)),
        config_for(workers, items),
        tracer,
        analyze,
    );
    let (responses, _) = drain(engine, items);
    (responses, sink.records())
}

/// Responses must agree field-for-field; only the wall-clock stage timings
/// are allowed to differ between runs.
fn assert_same_responses(a: &[ServeResponse], b: &[ServeResponse], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: response count");
    for (i, (s, p)) in a.iter().zip(b).enumerate() {
        assert_eq!(s.db_id, p.db_id, "{what}, request {i}: database");
        assert_eq!(s.sql, p.sql, "{what}, request {i}: accepted SQL");
        assert_eq!(s.accepted, p.accepted, "{what}, request {i}: verdict");
        assert_eq!(s.iterations, p.iterations, "{what}, request {i}: iterations");
        assert_eq!(s.explanation, p.explanation, "{what}, request {i}: explanation text");
        assert_eq!(
            s.result.as_deref(),
            p.result.as_deref(),
            "{what}, request {i}: result rows"
        );
    }
}

fn assert_deterministic(verifier_name: &str) {
    let (catalog, items) = workload();
    let (serial, serial_snap) = run_with_workers(1, &catalog, &items, verifier_name);
    let (parallel, parallel_snap) = run_with_workers(4, &catalog, &items, verifier_name);

    assert_same_responses(&serial, &parallel, "1 vs 4 workers");

    // Counters are interleaving-independent…
    assert_eq!(serial_snap.admitted, parallel_snap.admitted);
    assert_eq!(serial_snap.completed, parallel_snap.completed);
    assert_eq!(serial_snap.completed, items.len() as u64);
    assert_eq!(serial_snap.shed, 0);
    assert_eq!(serial_snap.timeouts, parallel_snap.timeouts);
    assert_eq!(serial_snap.verifier_accepts, parallel_snap.verifier_accepts);
    assert_eq!(serial_snap.verifier_rejects, parallel_snap.verifier_rejects);
    // …and so is the total number of plan-cache lookups; only the
    // hit/miss split may move when two workers race to compile one key.
    assert_eq!(
        serial_snap.cache_hits + serial_snap.cache_misses,
        parallel_snap.cache_hits + parallel_snap.cache_misses,
        "total plan lookups"
    );
    assert!(
        parallel_snap.cache_hits > 0,
        "the repeated-question mix hits the plan cache"
    );
    assert!(
        parallel_snap.cache_hits >= parallel_snap.cache_misses,
        "second pass over the workload is all hits: {} hits vs {} misses",
        parallel_snap.cache_hits,
        parallel_snap.cache_misses
    );
}

#[test]
fn oracle_loop_is_worker_count_invariant() {
    assert_deterministic("oracle");
}

#[test]
fn explaining_loop_is_worker_count_invariant() {
    // AlwaysAccept runs the full provenance + explanation path per
    // request, so this pins explanation text across interleavings too.
    assert_deterministic("always-accept");
}

#[test]
fn traced_responses_and_span_counts_are_worker_count_invariant() {
    let (catalog, items) = workload();
    let (serial, serial_spans) = run_traced(1, &catalog, &items, "always-accept", false);
    let (parallel, parallel_spans) = run_traced(4, &catalog, &items, "always-accept", false);

    assert_same_responses(&serial, &parallel, "traced, 1 vs 4 workers");

    // The span streams interleave differently, but each stage emits
    // exactly the same number of spans either way.
    let count = |spans: &[SpanRecord], name: &str| spans.iter().filter(|r| r.name == name).count();
    for stage in ["serve", "translate", "cycle", "execute", "provenance", "explain", "verify"] {
        assert_eq!(
            count(&serial_spans, stage),
            count(&parallel_spans, stage),
            "span count for stage `{stage}`"
        );
    }
    assert_eq!(count(&serial_spans, "serve"), items.len(), "one root span per request");
    assert_eq!(
        serial_spans.len(),
        parallel_spans.len(),
        "total spans emitted"
    );
}

#[test]
fn tracing_changes_no_responses() {
    let (catalog, items) = workload();
    let (untraced, _) = run_with_workers(2, &catalog, &items, "always-accept");
    let (traced, spans) = run_traced(2, &catalog, &items, "always-accept", false);
    let (analyzed, _) = run_traced(2, &catalog, &items, "always-accept", true);

    assert_same_responses(&untraced, &traced, "tracing off vs on");
    assert_same_responses(&untraced, &analyzed, "tracing off vs EXPLAIN ANALYZE");
    assert!(!spans.is_empty(), "traced run actually emitted spans");
}
