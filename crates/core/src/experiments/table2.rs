//! Table II: execution accuracy on the SPIDER dev split broken down by
//! Spider difficulty level.

use super::ExperimentContext;
use crate::eval::{evaluate, EvalMode, EvalOptions, Parallelism};
use cyclesql_benchgen::Split;
use cyclesql_models::SimulatedModel;
use serde::Serialize;
use std::fmt::Write as _;

/// One model's difficulty breakdown, base and +CycleSQL.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Model name.
    pub model: String,
    /// Base EX by difficulty (Easy/Medium/Hard/Extra-Hard).
    pub base: [f64; 4],
    /// +CycleSQL EX by difficulty.
    pub cycle: [f64; 4],
    /// Item counts per bucket.
    pub counts: [usize; 4],
}

/// The whole table.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// Rows in model order.
    pub rows: Vec<Table2Row>,
}

/// Runs Table II.
pub fn run(ctx: &ExperimentContext, models: &[SimulatedModel]) -> Table2Result {
    let cycle = ctx.cycle();
    let rows = models
        .iter()
        .map(|model| {
            let base = evaluate(
                model,
                &EvalOptions {
                    session: &ctx.spider,
                    split: Split::Dev,
                    mode: EvalMode::Base,
                    cycle: None,
                    k: None,
                    compute_ts: false,
                    parallelism: Parallelism::Auto,
                },
            );
            let with = evaluate(
                model,
                &EvalOptions {
                    session: &ctx.spider,
                    split: Split::Dev,
                    mode: EvalMode::CycleSql,
                    cycle: Some(&cycle),
                    k: None,
                    compute_ts: false,
                    parallelism: Parallelism::Auto,
                },
            );
            Table2Row {
                model: model.profile.name.to_string(),
                base: base.ex_by_difficulty,
                cycle: with.ex_by_difficulty,
                counts: base.counts_by_difficulty,
            }
        })
        .collect();
    Table2Result { rows }
}

impl Table2Result {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table II: execution accuracy (%) by SQL difficulty level");
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>8} {:>8} {:>8} {:>12}",
            "model", "config", "Easy", "Medium", "Hard", "Extra Hard"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<10} {:>8.1} {:>8.1} {:>8.1} {:>12.1}",
                r.model, "Base", r.base[0], r.base[1], r.base[2], r.base[3]
            );
            let _ = writeln!(
                out,
                "{:<16} {:<10} {:>8.1} {:>8.1} {:>8.1} {:>12.1}",
                r.model, "+CycleSQL", r.cycle[0], r.cycle[1], r.cycle[2], r.cycle[3]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_models::ModelProfile;

    #[test]
    fn difficulty_generally_decreases_accuracy() {
        let ctx = ExperimentContext::shared_quick();
        let models = vec![SimulatedModel::new(ModelProfile::resdsql_3b())];
        let t = run(ctx, &models);
        let r = &t.rows[0];
        // Easy must beat Extra-Hard for a calibrated model.
        assert!(
            r.base[0] > r.base[3],
            "easy {} should beat extra-hard {}",
            r.base[0],
            r.base[3]
        );
        assert_eq!(r.counts.iter().sum::<usize>(), ctx.spider.dev.len());
    }

    #[test]
    fn render_has_all_buckets() {
        let ctx = ExperimentContext::shared_quick();
        let models = vec![SimulatedModel::new(ModelProfile::smbop())];
        let text = run(ctx, &models).render();
        for b in ["Easy", "Medium", "Hard", "Extra Hard"] {
            assert!(text.contains(b));
        }
    }
}
