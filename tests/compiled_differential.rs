//! Differential test pinning the full engine matrix to the reference
//! tree-walking interpreter: for every gold query of the generated Spider
//! and Science suites, the reference interpreter, the compiled row-at-a-time
//! engine, and the compiled columnar engine (at the default batch size and
//! at a tiny chunk size that forces mid-operator batch boundaries) must
//! produce *identical* output — same columns, same rows in the same order
//! (compared by `Debug` rendering, which is stricter than `Value`'s
//! sql_eq-based `PartialEq`), and the same per-row lineage in the same
//! order. Queries that fail must fail with the same error on every path.
//!
//! The columnar engine additionally runs a thread-count sweep: every
//! worker count must produce output (rows, lineage, `RunStats`) that is
//! bit-identical to the single-threaded columnar engine at the same batch
//! size, and runtime errors must surface identically mid-morsel.

use cyclesql_benchgen::{
    build_science_suite, build_spider_suite, BenchmarkSuite, Split, SuiteConfig, Variant,
};
use cyclesql_provenance::rewrite_for_provenance;
use cyclesql_sql::{parse, Query};
use cyclesql_storage::{compile, reference, Database, ExecError, ExecOpts, ExecOutput};

fn small_config() -> SuiteConfig {
    SuiteConfig {
        seed: 0xD1FF,
        train_per_template: 1,
        eval_per_template: 1,
    }
}

fn suites() -> Vec<BenchmarkSuite> {
    vec![
        build_spider_suite(Variant::Spider, small_config()),
        build_science_suite(small_config()),
    ]
}

/// Forces a chunk boundary inside nearly every operator on the generated
/// databases (which all have more than three rows per table).
const TINY_BATCH: usize = 3;

/// Morsel-pool widths the parallel sweep exercises: single-threaded
/// baseline, undersubscribed, and more workers than most scans have
/// morsels (idle workers must not perturb the merge).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Batch sizes the parallel sweep crosses with [`THREAD_SWEEP`]:
/// one-row morsels (maximum interleaving), a size that splits operators
/// mid-stream, and the default single-morsel-per-small-table regime.
const BATCH_SWEEP: [usize; 3] = [1, 7, 1024];

/// Asserts `got` matches the reference outcome exactly — or fails with the
/// same error.
fn assert_matches_reference(
    reference: &Result<ExecOutput, ExecError>,
    got: Result<ExecOutput, ExecError>,
    engine: &str,
    ctx: &str,
) {
    match (reference, got) {
        (Ok(r), Ok(c)) => {
            assert_eq!(
                r.result.columns, c.result.columns,
                "columns diverge [{engine}]: {ctx}"
            );
            assert_eq!(
                format!("{:?}", r.result.rows),
                format!("{:?}", c.result.rows),
                "rows diverge [{engine}]: {ctx}"
            );
            assert_eq!(r.lineage, c.lineage, "lineage diverges [{engine}]: {ctx}");
        }
        (Err(r), Err(c)) => {
            assert_eq!(
                r.to_string(),
                c.to_string(),
                "errors diverge [{engine}]: {ctx}"
            );
        }
        (r, c) => panic!(
            "one path failed, the other succeeded [{engine}]: {ctx}\nreference: {:?}\n{engine}: {:?}",
            r.as_ref().map(|o| o.result.len()),
            c.map(|o| o.result.len())
        ),
    }
}

/// Asserts every engine in the matrix agrees with the reference
/// interpreter on `q` exactly — or fails with the same error.
fn assert_identical(db: &Database, q: &Query, ctx: &str) {
    let reference = reference::execute_with_lineage(db, q);
    let compiled = compile(db, q);
    match &compiled {
        Ok(plan) => {
            assert_matches_reference(&reference, plan.run_rowwise(db), "row", ctx);
            assert_matches_reference(&reference, plan.run(db), "columnar", ctx);
            assert_matches_reference(
                &reference,
                plan.run_batched(db, TINY_BATCH),
                "columnar/tiny-batch",
                ctx,
            );
            assert_thread_invariant(db, plan, ctx);
        }
        Err(e) => {
            let r = reference.expect_err(&format!("reference succeeded but compile failed: {ctx}"));
            assert_eq!(
                r.to_string(),
                e.to_string(),
                "compile error diverges: {ctx}"
            );
        }
    }
}

/// Asserts the full thread × batch matrix produces output bit-identical
/// to the single-threaded columnar engine at the same batch size — rows,
/// lineage order, and `RunStats` — and that errors match too.
fn assert_thread_invariant(db: &Database, plan: &cyclesql_storage::CompiledQuery, ctx: &str) {
    for batch_rows in BATCH_SWEEP {
        let baseline = plan.run_opts(
            db,
            &ExecOpts {
                batch_rows,
                ..ExecOpts::default()
            },
        );
        for threads in THREAD_SWEEP {
            let got = plan.run_opts(
                db,
                &ExecOpts {
                    batch_rows,
                    threads,
                    ..ExecOpts::default()
                },
            );
            match (&baseline, got) {
                (Ok((b_out, b_stats)), Ok((out, stats))) => {
                    assert_eq!(
                        format!("{:?}", b_out.result.rows),
                        format!("{:?}", out.result.rows),
                        "rows diverge at {threads} threads, batch {batch_rows}: {ctx}"
                    );
                    assert_eq!(
                        b_out.lineage, out.lineage,
                        "lineage diverges at {threads} threads, batch {batch_rows}: {ctx}"
                    );
                    assert_eq!(
                        *b_stats, stats,
                        "RunStats diverge at {threads} threads, batch {batch_rows}: {ctx}"
                    );
                }
                (Err(b), Err(e)) => {
                    assert_eq!(
                        b.to_string(),
                        e.to_string(),
                        "errors diverge at {threads} threads, batch {batch_rows}: {ctx}"
                    );
                }
                (b, g) => panic!(
                    "outcome diverges at {threads} threads, batch {batch_rows}: {ctx}\n\
                     single-threaded: {:?}\nparallel: {:?}",
                    b.as_ref().map(|(o, _)| o.result.len()),
                    g.map(|(o, _)| o.result.len())
                ),
            }
        }
    }
}

#[test]
fn every_generated_gold_is_identical_across_engines() {
    let mut checked = 0usize;
    for suite in suites() {
        for split in [Split::Train, Split::Dev, Split::Test] {
            for item in suite.split(split) {
                let q = parse(&item.gold_sql).expect("generated gold parses");
                assert_identical(suite.database(item), &q, &item.gold_sql);
                checked += 1;
            }
        }
    }
    assert!(
        checked > 100,
        "suite generation produced only {checked} queries"
    );
}

#[test]
fn one_compiled_plan_serves_all_variant_databases() {
    let suite = build_spider_suite(Variant::Spider, small_config());
    let mut reused = 0usize;
    for item in suite.dev.iter() {
        let q = parse(&item.gold_sql).expect("generated gold parses");
        let dev_db = suite.database(item);
        // Compile once against the dev database's schema…
        let Ok(compiled) = compile(dev_db, &q) else {
            continue;
        };
        for seed in 1..=2 {
            let Some(variant) = suite.database_variant(&item.db_name, seed) else {
                continue;
            };
            // …and run it on each variant through every engine: same rows
            // and lineage as a fresh interpretation over that variant.
            let direct = reference::execute_with_lineage(&variant, &q)
                .expect("reference executes on variant");
            for (engine, out) in [
                ("row", compiled.run_rowwise(&variant)),
                ("columnar", compiled.run(&variant)),
                (
                    "columnar/tiny-batch",
                    compiled.run_batched(&variant, TINY_BATCH),
                ),
            ] {
                let out = out.unwrap_or_else(|e| {
                    panic!("{engine} failed on variant: {e} ({})", item.gold_sql)
                });
                assert_eq!(
                    format!("{:?}", direct.result.rows),
                    format!("{:?}", out.result.rows),
                    "variant rows diverge [{engine}]: {}",
                    item.gold_sql
                );
                assert_eq!(
                    direct.lineage, out.lineage,
                    "variant lineage [{engine}]: {}",
                    item.gold_sql
                );
            }
            reused += 1;
        }
    }
    assert!(reused > 20, "only {reused} plan reuses exercised");
}

#[test]
fn provenance_rewrites_are_identical_across_engines() {
    let suite = build_spider_suite(Variant::Spider, small_config());
    let mut checked = 0usize;
    for item in suite.dev.iter().take(60) {
        let db = suite.database(item);
        let q = parse(&item.gold_sql).expect("generated gold parses");
        let Ok(result) = cyclesql_storage::execute(db, &q) else {
            continue;
        };
        let Some(row) = result.rows.first() else {
            continue;
        };
        // The provenance rewrite produces the queries the feedback loop
        // actually runs; they must behave identically on every path too.
        for core in rewrite_for_provenance(db, &q, &result.columns, row) {
            assert_identical(db, &core.query, &item.gold_sql);
            checked += 1;
        }
    }
    assert!(checked > 10, "only {checked} rewrites exercised");
}

#[test]
fn mid_morsel_evaluation_errors_match_at_every_thread_count() {
    // An aggregate in WHERE compiles but raises "aggregate used outside of
    // an aggregate context" the moment the filter evaluates a row — so
    // with one-row morsels, every morsel errors mid-stream. Whichever
    // worker trips it first, the engine must surface exactly the row
    // engine's error at every width (first-erroring-morsel-in-order wins,
    // then the fallback reruns row-wise for the canonical message).
    let suite = build_spider_suite(Variant::Spider, small_config());
    let db = suite
        .database_variant("world_1", 1)
        .expect("world_1 domain exists");
    let db = &db;
    let q = parse("SELECT name FROM country WHERE count(*) > 1").expect("parses");
    let plan = compile(db, &q).expect("aggregate placement is a runtime error");
    let row_err = plan
        .run_rowwise(db)
        .expect_err("row engine errors")
        .to_string();
    for batch_rows in BATCH_SWEEP {
        for threads in THREAD_SWEEP {
            let err = plan
                .run_opts(
                    db,
                    &ExecOpts {
                        batch_rows,
                        threads,
                        ..ExecOpts::default()
                    },
                )
                .expect_err("columnar engine errors")
                .to_string();
            assert_eq!(
                row_err, err,
                "error diverges at {threads} threads, batch {batch_rows}"
            );
        }
    }
}

#[test]
fn dialect_frontier_fixtures_are_identical_across_engines() {
    // Hand-written fixtures for the constructs the generated suites only
    // sample sparsely: CTEs (including chained definitions and base-table
    // shadowing), CASE in every evaluation site, and each outer-join
    // flavor — all through the full thread × batch sweep.
    let suite = build_spider_suite(Variant::Spider, small_config());
    let db = suite
        .database_variant("world_1", 1)
        .expect("world_1 domain exists");
    let fixtures = [
        // CTEs: single, chained, joined against a base table, shadowing.
        "WITH big AS (SELECT name, population FROM country WHERE population > 1000000) \
         SELECT count(*) FROM big",
        "WITH a AS (SELECT code FROM country WHERE continent = 'Europe'), \
         b AS (SELECT countrycode FROM city) \
         SELECT count(*) FROM a JOIN b ON a.code = b.countrycode",
        "WITH country AS (SELECT name FROM country WHERE population > 1000000) \
         SELECT name FROM country ORDER BY name",
        "WITH src AS (SELECT continent, population FROM country) \
         SELECT continent, count(*) FROM src GROUP BY continent",
        // CASE: projection, searched vs operand form, WHERE, group context.
        "SELECT name, CASE WHEN population > 1000000 THEN 'big' ELSE 'small' END \
         FROM country ORDER BY name",
        "SELECT name, CASE continent WHEN 'Europe' THEN 'EU' WHEN 'Asia' THEN 'AS' END \
         FROM country ORDER BY name",
        "SELECT name FROM country \
         WHERE CASE WHEN population > 1000000 THEN 1 ELSE 0 END = 1 ORDER BY name",
        "SELECT continent, CASE WHEN count(*) > 2 THEN 'many' ELSE 'few' END \
         FROM country GROUP BY continent",
        // Outer joins: each flavor, plus aggregation over padded rows.
        "SELECT T1.name, T2.name FROM country AS T1 LEFT JOIN city AS T2 \
         ON T1.code = T2.countrycode ORDER BY T1.name, T2.name",
        "SELECT T1.name, T2.name FROM city AS T1 RIGHT JOIN country AS T2 \
         ON T1.countrycode = T2.code ORDER BY T2.name, T1.name",
        "SELECT T1.name, T2.name FROM country AS T1 FULL OUTER JOIN city AS T2 \
         ON T1.code = T2.countrycode ORDER BY T1.name, T2.name",
        "SELECT T1.continent, count(T2.name) FROM country AS T1 LEFT JOIN city AS T2 \
         ON T1.code = T2.countrycode GROUP BY T1.continent",
        // All three combined in one plan.
        "WITH eu AS (SELECT code, name FROM country WHERE continent = 'Europe') \
         SELECT eu.name, CASE WHEN T2.population > 1000000 THEN 'big' ELSE 'small' END \
         FROM eu LEFT JOIN city AS T2 ON eu.code = T2.countrycode \
         ORDER BY eu.name, T2.name",
    ];
    for sql in fixtures {
        let q = parse(sql).expect("fixture parses");
        assert_identical(&db, &q, sql);
    }
}

#[test]
fn dialect_frontier_runtime_errors_match_across_engines() {
    // Error parity: a CTE body that raises at materialization time and a
    // CASE branch that raises mid-evaluation must surface the identical
    // message on every engine at every thread and batch setting.
    let suite = build_spider_suite(Variant::Spider, small_config());
    let db = suite
        .database_variant("world_1", 1)
        .expect("world_1 domain exists");
    for sql in [
        "WITH bad AS (SELECT name FROM country WHERE count(*) > 1) SELECT name FROM bad",
        "SELECT CASE WHEN population > 0 THEN count(*) ELSE 0 END FROM country",
    ] {
        let q = parse(sql).expect("fixture parses");
        assert_identical(&db, &q, sql);
    }
}
