//! Lexer for the Spider SQL subset.

use crate::error::SqlError;

/// SQL keywords recognized by the lexer. Anything else alphabetic becomes an
/// [`Token::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Distinct,
    Join,
    Inner,
    Left,
    Outer,
    On,
    As,
    And,
    Or,
    Not,
    In,
    Exists,
    Between,
    Like,
    Is,
    Null,
    Union,
    Intersect,
    Except,
    Asc,
    Desc,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    True,
    False,
    With,
    Case,
    When,
    Then,
    Else,
    End,
    Right,
    Full,
}

impl Keyword {
    fn parse(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_lowercase().as_str() {
            "select" => Keyword::Select,
            "from" => Keyword::From,
            "where" => Keyword::Where,
            "group" => Keyword::Group,
            "by" => Keyword::By,
            "having" => Keyword::Having,
            "order" => Keyword::Order,
            "limit" => Keyword::Limit,
            "distinct" => Keyword::Distinct,
            "join" => Keyword::Join,
            "inner" => Keyword::Inner,
            "left" => Keyword::Left,
            "outer" => Keyword::Outer,
            "on" => Keyword::On,
            "as" => Keyword::As,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "in" => Keyword::In,
            "exists" => Keyword::Exists,
            "between" => Keyword::Between,
            "like" => Keyword::Like,
            "is" => Keyword::Is,
            "null" => Keyword::Null,
            "union" => Keyword::Union,
            "intersect" => Keyword::Intersect,
            "except" => Keyword::Except,
            "asc" => Keyword::Asc,
            "desc" => Keyword::Desc,
            "count" => Keyword::Count,
            "sum" => Keyword::Sum,
            "avg" => Keyword::Avg,
            "min" => Keyword::Min,
            "max" => Keyword::Max,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "with" => Keyword::With,
            "case" => Keyword::Case,
            "when" => Keyword::When,
            "then" => Keyword::Then,
            "else" => Keyword::Else,
            "end" => Keyword::End,
            "right" => Keyword::Right,
            "full" => Keyword::Full,
            _ => return None,
        })
    }

    /// Upper-case surface text of the keyword, for error messages.
    pub fn text(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Limit => "LIMIT",
            Keyword::Distinct => "DISTINCT",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Outer => "OUTER",
            Keyword::On => "ON",
            Keyword::As => "AS",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Exists => "EXISTS",
            Keyword::Between => "BETWEEN",
            Keyword::Like => "LIKE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::Union => "UNION",
            Keyword::Intersect => "INTERSECT",
            Keyword::Except => "EXCEPT",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Count => "count",
            Keyword::Sum => "sum",
            Keyword::Avg => "avg",
            Keyword::Min => "min",
            Keyword::Max => "max",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::With => "WITH",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Right => "RIGHT",
            Keyword::Full => "FULL",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Recognized keyword.
    Keyword(Keyword),
    /// Identifier (table, column, alias); stored lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes stripped, original case preserved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

/// Tokenizes a SQL string.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] on unterminated strings or unexpected bytes.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    Ok(tokenize_spanned(input)?.0)
}

/// Tokenizes a SQL string, also returning each token's starting byte
/// offset in `input` (parallel to the token vector). The parser uses the
/// offsets to report `at offset N` spans in error messages.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] on unterminated strings or unexpected bytes.
pub fn tokenize_spanned(input: &str) -> Result<(Vec<Token>, Vec<usize>), SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut offsets = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let tok_start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::lex(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                let mut value = String::new();
                loop {
                    match input[j..].chars().next() {
                        None => {
                            return Err(SqlError::lex(format!(
                                "unterminated string starting at byte {i}"
                            )))
                        }
                        Some(ch) if ch == quote => {
                            // Doubled quote is an escaped quote.
                            if input[j + ch.len_utf8()..].starts_with(quote) {
                                value.push(quote);
                                j += ch.len_utf8() * 2;
                            } else {
                                j += ch.len_utf8();
                                break;
                            }
                        }
                        Some(ch) => {
                            value.push(ch);
                            j += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(value));
                i = j;
            }
            '0'..='9' => {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && !seen_dot
                        && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if seen_dot {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| SqlError::lex(format!("bad float {text}: {e}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| SqlError::lex(format!("bad int {text}: {e}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '`' => {
                // Backtick-quoted identifiers are accepted and unquoted.
                let quoted = c == '`';
                if quoted {
                    i += 1;
                }
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                if quoted {
                    if bytes.get(i) == Some(&b'`') {
                        i += 1;
                    } else {
                        return Err(SqlError::lex(format!(
                            "unterminated backtick identifier at byte {start}"
                        )));
                    }
                    tokens.push(Token::Ident(word.to_ascii_lowercase()));
                } else if let Some(kw) = Keyword::parse(word) {
                    tokens.push(Token::Keyword(kw));
                } else {
                    tokens.push(Token::Ident(word.to_ascii_lowercase()));
                }
            }
            other => {
                return Err(SqlError::lex(format!("unexpected character {other:?} at byte {i}")))
            }
        }
        // Every arm above appends at most one token; tag it with the byte
        // offset the iteration started at (whitespace appends none).
        while offsets.len() < tokens.len() {
            offsets.push(tok_start);
        }
    }
    Ok((tokens, offsets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT count(*) FROM Flight WHERE name = 'Airbus A340-300'")
            .expect("tokenize");
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Keyword(Keyword::Count));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[3], Token::Star);
        assert!(toks.contains(&Token::Str("Airbus A340-300".into())));
        assert!(toks.contains(&Token::Ident("flight".into())));
    }

    #[test]
    fn numbers_and_floats() {
        let toks = tokenize("1 2.5 300").expect("tokenize");
        assert_eq!(toks, vec![Token::Int(1), Token::Float(2.5), Token::Int(300)]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a >= 1 AND b <> 2 AND c != 3 AND d <= 4").expect("tokenize");
        assert!(toks.contains(&Token::GtEq));
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(toks.contains(&Token::LtEq));
    }

    #[test]
    fn escaped_quote_inside_string() {
        let toks = tokenize("'it''s'").expect("tokenize");
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn double_quoted_string() {
        let toks = tokenize("\"France\"").expect("tokenize");
        assert_eq!(toks, vec![Token::Str("France".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn backtick_identifier() {
        let toks = tokenize("`Order`").expect("tokenize");
        assert_eq!(toks, vec![Token::Ident("order".into())]);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("sElEcT DISTINCT").expect("tokenize");
        assert_eq!(
            toks,
            vec![Token::Keyword(Keyword::Select), Token::Keyword(Keyword::Distinct)]
        );
    }

    #[test]
    fn unicode_in_string_literal() {
        let toks = tokenize("'Nabereznyje Tšelny'").expect("tokenize");
        assert_eq!(toks, vec![Token::Str("Nabereznyje Tšelny".into())]);
    }

    #[test]
    fn new_dialect_keywords() {
        let toks = tokenize("WITH CASE WHEN THEN ELSE END RIGHT FULL").expect("tokenize");
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::With),
                Token::Keyword(Keyword::Case),
                Token::Keyword(Keyword::When),
                Token::Keyword(Keyword::Then),
                Token::Keyword(Keyword::Else),
                Token::Keyword(Keyword::End),
                Token::Keyword(Keyword::Right),
                Token::Keyword(Keyword::Full),
            ]
        );
    }

    #[test]
    fn spanned_offsets_point_at_token_starts() {
        let (toks, offs) = tokenize_spanned("SELECT a, 'x'  FROM t1").expect("tokenize");
        assert_eq!(toks.len(), offs.len());
        // SELECT@0 a@7 ,@8 'x'@10 FROM@15 t1@20
        assert_eq!(offs, vec![0, 7, 8, 10, 15, 20]);
        assert_eq!(toks[3], Token::Str("x".into()));
    }
}
