/root/repo/target/release/deps/proptest_exec-7baae58b929b53cd.d: crates/storage/tests/proptest_exec.rs

/root/repo/target/release/deps/proptest_exec-7baae58b929b53cd: crates/storage/tests/proptest_exec.rs

crates/storage/tests/proptest_exec.rs:
