/root/repo/target/release/deps/end_to_end-8c0dfa73fdc31acd.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-8c0dfa73fdc31acd: tests/end_to_end.rs

tests/end_to_end.rs:
