/root/repo/target/release/deps/criterion-5ed041ead109120a.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5ed041ead109120a.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5ed041ead109120a.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
