//! Query-plan description: a human-readable account of how the executor
//! will evaluate a query (scan order, join strategy, filters, grouping,
//! set operations). Purely descriptive — the executor itself makes the
//! same decisions independently — but pinned to the real dispatch logic by
//! tests so the description cannot drift from the implementation.

use crate::table::Database;
use cyclesql_sql::{BinOp, Expr, Query, QueryBody, SelectCore};
use std::fmt::Write as _;

/// One step of the described plan.
#[allow(missing_docs)] // field names are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Sequential scan of a base table.
    Scan { table: String, rows: usize },
    /// Hash join on a single equality key.
    HashJoin { table: String, rows: usize, on: String },
    /// Nested-loop join (non-equi or compound condition, or no condition).
    NestedLoopJoin { table: String, rows: usize, on: Option<String> },
    /// Filter application.
    Filter { predicate: String },
    /// Grouping / aggregation.
    Aggregate { group_keys: usize, having: bool },
    /// Duplicate elimination.
    Distinct,
    /// Sorting.
    Sort { keys: usize },
    /// Row limit.
    Limit { n: u64 },
    /// Set operation combining two sub-plans.
    SetOp { op: String },
}

/// A described plan: steps in execution order (set-operation branches are
/// flattened with `SetOp` separators, mirroring the executor).
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// The steps.
    pub steps: Vec<PlanStep>,
}

impl QueryPlan {
    /// Pretty text rendering, one step per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let line = match step {
                PlanStep::Scan { table, rows } => format!("SCAN {table} ({rows} rows)"),
                PlanStep::HashJoin { table, rows, on } => {
                    format!("HASH JOIN {table} ({rows} rows) ON {on}")
                }
                PlanStep::NestedLoopJoin { table, rows, on } => match on {
                    Some(on) => format!("NESTED LOOP JOIN {table} ({rows} rows) ON {on}"),
                    None => format!("NESTED LOOP JOIN {table} ({rows} rows) [cross]"),
                },
                PlanStep::Filter { predicate } => format!("FILTER {predicate}"),
                PlanStep::Aggregate { group_keys, having } => format!(
                    "AGGREGATE ({} group key(s){})",
                    group_keys,
                    if *having { ", HAVING" } else { "" }
                ),
                PlanStep::Distinct => "DISTINCT".to_string(),
                PlanStep::Sort { keys } => format!("SORT ({keys} key(s))"),
                PlanStep::Limit { n } => format!("LIMIT {n}"),
                PlanStep::SetOp { op } => format!("SET {op}"),
            };
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Whether any join uses the hash strategy.
    pub fn uses_hash_join(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, PlanStep::HashJoin { .. }))
    }
}

/// Describes how the executor will evaluate `query` against `db`.
pub fn describe_plan(db: &Database, query: &Query) -> QueryPlan {
    let mut plan = QueryPlan::default();
    describe_body(db, &query.body, &mut plan);
    if !query.order_by.is_empty() {
        plan.steps.push(PlanStep::Sort { keys: query.order_by.len() });
    }
    if let Some(n) = query.limit {
        plan.steps.push(PlanStep::Limit { n });
    }
    plan
}

fn describe_body(db: &Database, body: &QueryBody, plan: &mut QueryPlan) {
    match body {
        QueryBody::Select(core) => describe_core(db, core, plan),
        QueryBody::SetOp { op, left, right } => {
            describe_body(db, left, plan);
            plan.steps.push(PlanStep::SetOp { op: op.keyword().to_string() });
            describe_body(db, right, plan);
        }
    }
}

fn describe_core(db: &Database, core: &SelectCore, plan: &mut QueryPlan) {
    let row_count =
        |name: &str| -> usize { db.table(name).map(|t| t.len()).unwrap_or(0) };
    plan.steps.push(PlanStep::Scan {
        table: core.from.base.name.clone(),
        rows: row_count(&core.from.base.name),
    });
    // Track the visible prefix to mirror the executor's equi-join detection:
    // one side must resolve into already-joined tables, the other into the
    // fresh table.
    let mut prefix: Vec<String> = vec![
        core.from.base.visible_name().to_string(),
        core.from.base.name.clone(),
    ];
    for join in &core.from.joins {
        let rows = row_count(&join.table.name);
        let fresh = [join.table.visible_name().to_string(), join.table.name.clone()];
        let hashable = join.on.as_ref().and_then(|on| {
            let Expr::Binary { op: BinOp::Eq, left, right } = on else { return None };
            let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
                return None;
            };
            let side = |c: &cyclesql_sql::ColumnRef| -> Option<bool> {
                // true = prefix side, false = fresh side. Unqualified columns
                // are ambiguous here; be conservative and refuse.
                let q = c.table.as_deref()?;
                if fresh.iter().any(|f| f == q) {
                    Some(false)
                } else if prefix.iter().any(|p| p == q) {
                    Some(true)
                } else {
                    None
                }
            };
            match (side(a), side(b)) {
                (Some(x), Some(y)) if x != y => Some(on.to_string()),
                _ => None,
            }
        });
        match hashable {
            Some(on) => plan.steps.push(PlanStep::HashJoin {
                table: join.table.name.clone(),
                rows,
                on,
            }),
            None => plan.steps.push(PlanStep::NestedLoopJoin {
                table: join.table.name.clone(),
                rows,
                on: join.on.as_ref().map(|o| o.to_string()),
            }),
        }
        prefix.extend(fresh);
    }
    if let Some(w) = &core.where_clause {
        plan.steps.push(PlanStep::Filter { predicate: w.to_string() });
    }
    if core.has_aggregate() || !core.group_by.is_empty() {
        plan.steps.push(PlanStep::Aggregate {
            group_keys: core.group_by.len(),
            having: core.having.is_some(),
        });
    }
    if core.distinct {
        plan.steps.push(PlanStep::Distinct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, DatabaseSchema, TableSchema};
    use crate::value::Value;
    use cyclesql_sql::parse;

    fn db() -> Database {
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(TableSchema::new(
            "a",
            vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("x", DataType::Int)],
        ));
        schema.add_table(TableSchema::new(
            "b",
            vec![ColumnDef::new("bid", DataType::Int), ColumnDef::new("aid", DataType::Int)],
        ));
        let mut d = Database::new(schema);
        d.insert("a", vec![Value::Int(1), Value::Int(10)]);
        d.insert("b", vec![Value::Int(1), Value::Int(1)]);
        d.insert("b", vec![Value::Int(2), Value::Int(1)]);
        d
    }

    #[test]
    fn equi_join_described_as_hash() {
        let d = db();
        let q = parse("SELECT count(*) FROM b AS t1 JOIN a AS t2 ON t1.aid = t2.id").unwrap();
        let plan = describe_plan(&d, &q);
        assert!(plan.uses_hash_join(), "{}", plan.render());
        assert!(plan.render().contains("HASH JOIN a (1 rows)"), "{}", plan.render());
    }

    #[test]
    fn compound_on_described_as_nested_loop() {
        let d = db();
        let q = parse(
            "SELECT count(*) FROM b AS t1 JOIN a AS t2 ON t1.aid = t2.id AND 1 = 1",
        )
        .unwrap();
        let plan = describe_plan(&d, &q);
        assert!(!plan.uses_hash_join(), "{}", plan.render());
    }

    #[test]
    fn cross_join_described_as_nested_loop() {
        let d = db();
        let q = parse("SELECT count(*) FROM a, b").unwrap();
        let plan = describe_plan(&d, &q);
        assert!(plan.render().contains("[cross]"), "{}", plan.render());
    }

    #[test]
    fn full_pipeline_steps_in_order() {
        let d = db();
        let q = parse(
            "SELECT DISTINCT t2.x, count(*) FROM b AS t1 JOIN a AS t2 ON t1.aid = t2.id \
             WHERE t1.bid > 0 GROUP BY t2.x HAVING count(*) > 1 ORDER BY t2.x LIMIT 5",
        )
        .unwrap();
        let plan = describe_plan(&d, &q);
        let rendered = plan.render();
        let order = ["SCAN", "HASH JOIN", "FILTER", "AGGREGATE", "DISTINCT", "SORT", "LIMIT"];
        let mut last = 0;
        for marker in order {
            let pos = rendered[last..]
                .find(marker)
                .unwrap_or_else(|| panic!("{marker} missing or out of order in:\n{rendered}"));
            last += pos;
        }
        assert!(rendered.contains("HAVING"));
    }

    #[test]
    fn set_op_branches_flattened() {
        let d = db();
        let q = parse("SELECT x FROM a UNION SELECT bid FROM b").unwrap();
        let plan = describe_plan(&d, &q);
        assert!(plan.render().contains("SET UNION"), "{}", plan.render());
        assert_eq!(
            plan.steps.iter().filter(|s| matches!(s, PlanStep::Scan { .. })).count(),
            2
        );
    }

    /// The describer's hash/nested decision must match the executor's: both
    /// strategies produce identical results anyway (pinned elsewhere), but a
    /// drifted description would mislead; spot-check the dispatch inputs.
    #[test]
    fn description_matches_executor_dispatch_rules() {
        let d = db();
        // Unqualified columns are ambiguous to the describer → nested loop
        // (conservative), while remaining correct.
        let q = parse("SELECT count(*) FROM b JOIN a ON aid = id").unwrap();
        let plan = describe_plan(&d, &q);
        assert!(!plan.uses_hash_join());
        let r = crate::exec::execute(&d, &q).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }
}
