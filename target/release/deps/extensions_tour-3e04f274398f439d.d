/root/repo/target/release/deps/extensions_tour-3e04f274398f439d.d: examples/extensions_tour.rs

/root/repo/target/release/deps/extensions_tour-3e04f274398f439d: examples/extensions_tour.rs

examples/extensions_tour.rs:
