/root/repo/target/release/deps/storage_bench-01ac769ec19e36b7.d: crates/bench/src/bin/storage_bench.rs

/root/repo/target/release/deps/storage_bench-01ac769ec19e36b7: crates/bench/src/bin/storage_bench.rs

crates/bench/src/bin/storage_bench.rs:
