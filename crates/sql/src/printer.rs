//! Pretty-printer: renders the AST back to SQL text.
//!
//! The printer produces a canonical surface form; `parse(print(ast)) == ast`
//! is a tested invariant (see the property tests).

use crate::ast::*;
use std::fmt::{self, Write as _};

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(n) => write!(f, "{n}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a fractional part so the literal round-trips as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Binary { op, left, right } => {
                let needs_paren = |e: &Expr, parent: BinOp| match e {
                    Expr::Binary { op, .. } => precedence(*op) < precedence(parent),
                    _ => false,
                };
                if needs_paren(left, *op) {
                    write!(f, "({left})")?;
                } else {
                    write!(f, "{left}")?;
                }
                write!(f, " {} ", op.symbol())?;
                // Right side: parenthesize equal precedence too, to preserve
                // left-associativity on round-trip.
                let rp = match right.as_ref() {
                    Expr::Binary { op: rop, .. } => precedence(*rop) <= precedence(*op),
                    _ => false,
                };
                if rp {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Agg { func, distinct, arg } => {
                write!(f, "{}(", func.name())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    FuncArg::Star => write!(f, "*")?,
                    FuncArg::Expr(e) => write!(f, "{e}")?,
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, subquery, negated } => {
                write!(f, "{expr} {}IN ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::Exists { subquery, negated } => {
                write!(f, "{}EXISTS ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like { expr, pattern, negated } => write!(
                f,
                "{expr} {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Case { operand, branches, else_ } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (cond, value) in branches {
                    write!(f, " WHEN {cond} THEN {value}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::QualifiedStar(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " FROM {}", self.from.base)?;
        for j in &self.from.joins {
            // Exhaustive over JoinType via keyword(): a new flavor cannot
            // silently print as an inner join.
            match j.join_type {
                JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full => {
                    write!(f, " {} {}", j.join_type.keyword(), j.table)?
                }
            }
            if let Some(on) = &j.on {
                write!(f, " ON {on}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for QueryBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBody::Select(core) => write!(f, "{core}"),
            QueryBody::SetOp { op, left, right } => {
                write!(f, "{left} {} {right}", op.keyword())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            write!(f, "WITH ")?;
            for (i, cte) in self.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} AS ({})", cte.name, cte.query)?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                match o.order {
                    SortOrder::Asc => write!(f, " ASC")?,
                    SortOrder::Desc => write!(f, " DESC")?,
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

/// Renders a query to a `String` (convenience wrapper over `Display`).
pub fn to_sql(q: &Query) -> String {
    let mut s = String::new();
    let _ = write!(s, "{q}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(sql: &str) {
        let q1 = parse(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
        let printed = to_sql(&q1);
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(q1, q2, "round-trip mismatch for {sql} -> {printed}");
    }

    #[test]
    fn roundtrip_corpus() {
        for sql in [
            "SELECT count(*) FROM flight WHERE name = 'Airbus A340-300'",
            "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English'",
            "SELECT name FROM a WHERE x = 1 INTERSECT SELECT name FROM a WHERE x = 2",
            "SELECT count(T2.language), T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode GROUP BY T1.name HAVING count(*) > 2",
            "SELECT name FROM country WHERE code NOT IN (SELECT countrycode FROM countrylanguage WHERE language = 'English')",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%'",
            "SELECT name FROM t WHERE pop > (SELECT avg(pop) FROM t)",
            "SELECT count(DISTINCT name) FROM t",
            "SELECT t1.* FROM flight AS t1",
            "SELECT a + b * c FROM t",
            "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3",
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3",
            "SELECT a FROM t WHERE b IS NULL AND c IS NOT NULL",
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id",
            "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10",
            "SELECT avg(x) FROM t WHERE NOT (a = 1)",
            "SELECT a FROM t WHERE x IN (1, 2, 3)",
            "SELECT DISTINCT a FROM t",
            "SELECT name FROM c WHERE id IN (SELECT cid FROM d WHERE x IN (SELECT y FROM e))",
            "SELECT a FROM t WHERE x = -5",
            "SELECT a FROM t WHERE y = 2.5",
            "SELECT sum(price) FROM orders UNION SELECT sum(cost) FROM expenses",
            "SELECT a FROM t EXCEPT SELECT a FROM u",
            "WITH big AS (SELECT name, population FROM city WHERE population > 1000) SELECT name FROM big",
            "WITH a AS (SELECT x FROM t), b AS (SELECT x FROM a) SELECT x FROM b ORDER BY x ASC LIMIT 2",
            "SELECT name, CASE WHEN population > 1000 THEN 'big' ELSE 'small' END FROM city",
            "SELECT CASE continent WHEN 'Asia' THEN 1 WHEN 'Europe' THEN 2 END FROM country",
            "SELECT a FROM t RIGHT JOIN u ON t.id = u.id",
            "SELECT a FROM t FULL OUTER JOIN u ON t.id = u.id",
            "SELECT name FROM city WHERE id IN (WITH k AS (SELECT id FROM city) SELECT id FROM k)",
            "SELECT CASE WHEN a > 1 THEN CASE WHEN b > 2 THEN 'x' END ELSE 'y' END FROM t",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn outer_join_flavors_print_their_keywords() {
        let q = parse("SELECT a FROM t RIGHT OUTER JOIN u ON t.id = u.id").unwrap();
        assert!(to_sql(&q).contains(" RIGHT JOIN u "), "printed: {}", to_sql(&q));
        let q = parse("SELECT a FROM t FULL JOIN u ON t.id = u.id").unwrap();
        assert!(to_sql(&q).contains(" FULL OUTER JOIN u "), "printed: {}", to_sql(&q));
    }

    #[test]
    fn float_literal_roundtrips_as_float() {
        let q = parse("SELECT a FROM t WHERE x = 2.0").unwrap();
        let printed = to_sql(&q);
        assert!(printed.contains("2.0"), "printed: {printed}");
        roundtrip("SELECT a FROM t WHERE x = 2.0");
    }

    #[test]
    fn string_escaping() {
        roundtrip("SELECT a FROM t WHERE name = 'O''Brien'");
    }

    #[test]
    fn parenthesization_preserves_or_under_and() {
        let q = parse("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3").unwrap();
        let printed = to_sql(&q);
        assert!(printed.contains('('), "printed: {printed}");
    }
}
