//! Executor tests over a fixture database modeled on the paper's Figure 2
//! (Flight/Aircraft) plus a world-like database for set ops and subqueries.

use crate::exec::{execute, execute_with_lineage};
use crate::schema::{ColumnDef, DataType, DatabaseSchema, TableSchema};
use crate::table::Database;
use crate::value::Value;
use cyclesql_sql::parse;

/// The Figure-2 database: Flight and Aircraft.
pub(crate) fn flight_db() -> Database {
    let mut schema = DatabaseSchema::new("flight_1");
    schema.add_table(TableSchema::new(
        "aircraft",
        vec![
            ColumnDef::new("aid", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("distance", DataType::Int),
        ],
    ));
    schema.add_table(TableSchema::new(
        "flight",
        vec![
            ColumnDef::new("flno", DataType::Int),
            ColumnDef::new("aid", DataType::Int),
            ColumnDef::new("origin", DataType::Text),
            ColumnDef::new("destination", DataType::Text),
        ],
    ));
    schema.add_foreign_key("flight", "aid", "aircraft", "aid");
    let mut db = Database::new(schema);
    for (aid, name, dist) in [
        (1, "Boeing 747-400", 8430),
        (2, "Boeing 737-800", 3383),
        (3, "Airbus A340-300", 7120),
    ] {
        db.insert(
            "aircraft",
            vec![Value::Int(aid), Value::from(name), Value::Int(dist)],
        );
    }
    for (flno, aid, origin, dest) in [
        (2, 1, "Los Angeles", "Tokyo"),
        (7, 3, "Los Angeles", "Sydney"),
        (13, 3, "Los Angeles", "Chicago"),
        (33, 2, "Boston", "Los Angeles"),
    ] {
        db.insert(
            "flight",
            vec![
                Value::Int(flno),
                Value::Int(aid),
                Value::from(origin),
                Value::from(dest),
            ],
        );
    }
    db
}

fn world_db() -> Database {
    let mut schema = DatabaseSchema::new("world_1");
    schema.add_table(TableSchema::new(
        "country",
        vec![
            ColumnDef::new("code", DataType::Text),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("continent", DataType::Text),
            ColumnDef::new("population", DataType::Int),
        ],
    ));
    schema.add_table(
        TableSchema::new(
            "countrylanguage",
            vec![
                ColumnDef::new("countrycode", DataType::Text),
                ColumnDef::new("language", DataType::Text),
                ColumnDef::new("isofficial", DataType::Text),
            ],
        )
        .with_primary_key(vec![0, 1]),
    );
    schema.add_foreign_key("countrylanguage", "countrycode", "country", "code");
    let mut db = Database::new(schema);
    for (code, name, cont, pop) in [
        ("ABW", "Aruba", "North America", 103000),
        ("FRA", "France", "Europe", 59225700),
        ("SYC", "Seychelles", "Africa", 77000),
        ("GBR", "United Kingdom", "Europe", 59623400),
        ("EST", "Estonia", "Europe", 1439200),
    ] {
        db.insert(
            "country",
            vec![
                Value::from(code),
                Value::from(name),
                Value::from(cont),
                Value::Int(pop),
            ],
        );
    }
    for (code, lang, official) in [
        ("ABW", "Dutch", "T"),
        ("ABW", "English", "F"),
        ("ABW", "Papiamento", "T"),
        ("ABW", "Spanish", "F"),
        ("FRA", "French", "T"),
        ("SYC", "English", "T"),
        ("SYC", "French", "T"),
        ("GBR", "English", "T"),
        ("EST", "Estonian", "T"),
        ("EST", "Russian", "F"),
    ] {
        db.insert(
            "countrylanguage",
            vec![Value::from(code), Value::from(lang), Value::from(official)],
        );
    }
    db
}

fn run(db: &Database, sql: &str) -> crate::result::ResultSet {
    execute(db, &parse(sql).unwrap()).unwrap_or_else(|e| panic!("exec {sql}: {e}"))
}

#[test]
fn figure2_count_query() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T2.name = 'Airbus A340-300'",
    );
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn figure2_correct_query_returns_flight_numbers() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T2.name = 'Airbus A340-300'",
    );
    assert_eq!(r.len(), 2);
    let flnos: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Int(n) => *n,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert!(flnos.contains(&7) && flnos.contains(&13));
}

#[test]
fn lineage_tracks_joined_sources() {
    let db = flight_db();
    let q = parse(
        "SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T2.name = 'Airbus A340-300'",
    )
    .unwrap();
    let out = execute_with_lineage(&db, &q).unwrap();
    assert_eq!(out.lineage.len(), 2);
    for lin in &out.lineage {
        assert_eq!(lin.len(), 2);
        assert_eq!(lin[0].table.as_ref(), "flight");
        assert_eq!(lin[1].table.as_ref(), "aircraft");
        // Aircraft row 2 is the A340.
        assert_eq!(lin[1].row, 2);
    }
}

#[test]
fn aggregate_lineage_is_group_union() {
    let db = flight_db();
    let q = parse(
        "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T2.name = 'Airbus A340-300'",
    )
    .unwrap();
    let out = execute_with_lineage(&db, &q).unwrap();
    assert_eq!(out.lineage.len(), 1);
    let flights: Vec<usize> = out.lineage[0]
        .iter()
        .filter(|s| s.table.as_ref() == "flight")
        .map(|s| s.row)
        .collect();
    assert_eq!(flights.len(), 2);
}

#[test]
fn where_filters_and_comparison_ops() {
    let db = flight_db();
    assert_eq!(run(&db, "SELECT flno FROM flight WHERE aid >= 3").len(), 2);
    assert_eq!(run(&db, "SELECT flno FROM flight WHERE aid != 3").len(), 2);
    assert_eq!(run(&db, "SELECT flno FROM flight WHERE aid < 2").len(), 1);
}

#[test]
fn group_by_with_count() {
    let db = flight_db();
    let r = run(&db, "SELECT origin, count(*) FROM flight GROUP BY origin");
    assert_eq!(r.len(), 2);
    let la = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("Los Angeles"))
        .expect("LA group");
    assert_eq!(la[1], Value::Int(3));
}

#[test]
fn having_filters_groups() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT origin, count(*) FROM flight GROUP BY origin HAVING count(*) > 1",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0][0], Value::from("Los Angeles"));
}

#[test]
fn order_by_and_limit() {
    let db = flight_db();
    let r = run(&db, "SELECT flno FROM flight ORDER BY flno DESC LIMIT 2");
    assert_eq!(r.rows, vec![vec![Value::Int(33)], vec![Value::Int(13)]]);
}

#[test]
fn order_by_aggregate_in_grouped_query() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT origin FROM flight GROUP BY origin ORDER BY count(*) DESC LIMIT 1",
    );
    assert_eq!(r.rows, vec![vec![Value::from("Los Angeles")]]);
}

#[test]
fn aggregates_min_max_sum_avg() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT min(distance), max(distance), sum(distance), avg(distance) FROM aircraft",
    );
    assert_eq!(r.rows[0][0], Value::Int(3383));
    assert_eq!(r.rows[0][1], Value::Int(8430));
    assert_eq!(r.rows[0][2], Value::Int(8430 + 3383 + 7120));
    let avg = (8430.0 + 3383.0 + 7120.0) / 3.0;
    assert_eq!(r.rows[0][3], Value::Float(avg));
}

#[test]
fn count_on_empty_group_is_zero() {
    let db = flight_db();
    let r = run(&db, "SELECT count(*) FROM flight WHERE origin = 'Nowhere'");
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
}

#[test]
fn sum_on_empty_is_null() {
    let db = flight_db();
    let r = run(&db, "SELECT sum(distance) FROM aircraft WHERE aid > 99");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn distinct_dedups() {
    let db = flight_db();
    let r = run(&db, "SELECT DISTINCT origin FROM flight");
    assert_eq!(r.len(), 2);
}

#[test]
fn count_distinct() {
    let db = flight_db();
    let r = run(&db, "SELECT count(DISTINCT origin) FROM flight");
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn star_projection_expands() {
    let db = flight_db();
    let r = run(&db, "SELECT * FROM aircraft WHERE aid = 1");
    assert_eq!(r.columns.len(), 3);
    assert_eq!(r.rows[0][1], Value::from("Boeing 747-400"));
}

#[test]
fn qualified_star_in_join() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT T2.* FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T1.flno = 2",
    );
    assert_eq!(r.columns.len(), 3);
    assert_eq!(r.rows[0][1], Value::from("Boeing 747-400"));
}

#[test]
fn left_join_pads_nulls() {
    let mut db = flight_db();
    // An aircraft with no flights.
    db.insert(
        "aircraft",
        vec![Value::Int(9), Value::from("Concorde"), Value::Int(4500)],
    );
    let r = run(
        &db,
        "SELECT T1.name, T2.flno FROM aircraft AS T1 LEFT JOIN flight AS T2 ON T1.aid = T2.aid \
         WHERE T1.name = 'Concorde'",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0][1], Value::Null);
}

#[test]
fn in_subquery() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country WHERE code IN \
         (SELECT countrycode FROM countrylanguage WHERE language = 'French')",
    );
    assert_eq!(r.len(), 2); // France, Seychelles
}

#[test]
fn not_in_subquery() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country WHERE code NOT IN \
         (SELECT countrycode FROM countrylanguage WHERE language = 'English')",
    );
    // ABW, SYC, GBR speak English; FRA and EST do not.
    assert_eq!(r.len(), 2);
}

#[test]
fn intersect_set_semantics() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode \
         WHERE T2.language = 'English' \
         INTERSECT \
         SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode \
         WHERE T2.language = 'French'",
    );
    assert_eq!(r.rows, vec![vec![Value::from("Seychelles")]]);
}

#[test]
fn union_dedups() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT continent FROM country WHERE name = 'France' \
         UNION SELECT continent FROM country WHERE name = 'Estonia'",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0][0], Value::from("Europe"));
}

#[test]
fn except_removes_right_side() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country EXCEPT SELECT name FROM country WHERE continent = 'Europe'",
    );
    assert_eq!(r.len(), 2); // Aruba, Seychelles
}

#[test]
fn scalar_subquery_comparison() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country WHERE population > (SELECT avg(population) FROM country)",
    );
    assert_eq!(r.len(), 2); // France, UK
}

#[test]
fn exists_subquery() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT count(*) FROM country WHERE EXISTS (SELECT language FROM countrylanguage)",
    );
    assert_eq!(r.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn like_predicate() {
    let db = world_db();
    let r = run(&db, "SELECT name FROM country WHERE name LIKE '%land%'");
    assert_eq!(r.len(), 0);
    let r = run(&db, "SELECT name FROM country WHERE name LIKE '%United%'");
    assert_eq!(r.len(), 1);
}

#[test]
fn between_predicate() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country WHERE population BETWEEN 100000 AND 2000000",
    );
    assert_eq!(r.len(), 2); // Aruba, Estonia
}

#[test]
fn in_value_list() {
    let db = world_db();
    let r = run(&db, "SELECT name FROM country WHERE code IN ('FRA', 'GBR')");
    assert_eq!(r.len(), 2);
}

#[test]
fn arithmetic_in_projection() {
    let db = flight_db();
    let r = run(&db, "SELECT distance / 10 FROM aircraft WHERE aid = 1");
    assert_eq!(r.rows, vec![vec![Value::Int(843)]]);
}

#[test]
fn or_predicate() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT flno FROM flight WHERE origin = 'Boston' OR destination = 'Tokyo'",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn nested_two_level_subquery() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT name FROM country WHERE code IN (SELECT countrycode FROM countrylanguage \
         WHERE language IN (SELECT language FROM countrylanguage WHERE countrycode = 'SYC'))",
    );
    // Countries speaking English or French.
    assert_eq!(r.len(), 4);
}

#[test]
fn unknown_table_errors() {
    let db = flight_db();
    assert!(execute(&db, &parse("SELECT x FROM missing").unwrap()).is_err());
}

#[test]
fn unknown_column_errors() {
    let db = flight_db();
    assert!(execute(&db, &parse("SELECT missing FROM flight").unwrap()).is_err());
}

#[test]
fn set_op_arity_mismatch_errors() {
    let db = flight_db();
    assert!(execute(
        &db,
        &parse("SELECT flno FROM flight UNION SELECT flno, aid FROM flight").unwrap()
    )
    .is_err());
}

#[test]
fn group_key_null_handling() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT origin, count(*) FROM flight GROUP BY origin");
    // NULL origin forms its own group.
    assert_eq!(r.len(), 3);
}

#[test]
fn count_column_skips_nulls() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT count(origin), count(*) FROM flight");
    assert_eq!(r.rows[0][0], Value::Int(4));
    assert_eq!(r.rows[0][1], Value::Int(5));
}

#[test]
fn comparison_with_null_is_filtered_out() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT flno FROM flight WHERE aid > 0");
    assert_eq!(r.len(), 4); // the NULL-aid row is excluded
}

#[test]
fn is_null_predicate() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT flno FROM flight WHERE aid IS NULL");
    assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
}

#[test]
fn bag_comparison_of_equivalent_queries() {
    let db = world_db();
    let a = run(&db, "SELECT count(code) FROM country");
    let b = run(&db, "SELECT count(*) FROM country");
    assert!(a.bag_eq(&b));
}

#[test]
fn order_by_two_keys() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT origin, flno FROM flight ORDER BY origin ASC, flno DESC",
    );
    assert_eq!(r.rows[0][0], Value::from("Boston"));
    assert_eq!(r.rows[1][1], Value::Int(13));
}

#[test]
fn multi_column_group_by() {
    let db = world_db();
    let r = run(
        &db,
        "SELECT countrycode, isofficial, count(*) FROM countrylanguage \
         GROUP BY countrycode, isofficial",
    );
    // ABW: T(2), F(2); FRA: T(1); SYC: T(2); GBR: T(1); EST: T(1), F(1)
    assert_eq!(r.len(), 7);
}

#[test]
fn comma_join_is_cross_product() {
    let db = flight_db();
    let r = run(&db, "SELECT count(*) FROM flight, aircraft");
    assert_eq!(r.rows, vec![vec![Value::Int(12)]]);
}

#[test]
fn self_join_with_aliases() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT count(*) FROM flight AS a JOIN flight AS b ON a.origin = b.origin",
    );
    // LA flights pair 3x3=9, Boston 1x1=1.
    assert_eq!(r.rows, vec![vec![Value::Int(10)]]);
}

#[test]
fn having_without_group_by() {
    let db = flight_db();
    let r = run(&db, "SELECT count(*) FROM flight HAVING count(*) > 1");
    assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
    let r = run(&db, "SELECT count(*) FROM flight HAVING count(*) > 100");
    assert!(r.is_empty());
}

#[test]
fn arithmetic_null_propagation() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT aid + 1 FROM flight WHERE flno = 99");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn division_by_zero_yields_null() {
    let db = flight_db();
    let r = run(&db, "SELECT distance / 0 FROM aircraft WHERE aid = 1");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn integer_division_truncates() {
    let db = flight_db();
    let r = run(&db, "SELECT 7 / 2 FROM aircraft WHERE aid = 1");
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn between_with_null_bound_filters_row_out() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT flno FROM flight WHERE aid BETWEEN 1 AND 3");
    assert_eq!(r.len(), 4, "NULL aid row excluded");
}

#[test]
fn not_of_null_is_filtered() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT flno FROM flight WHERE NOT (aid = 1)");
    // NOT NULL = NULL → excluded; flights with aid != 1 remain.
    assert_eq!(r.len(), 3);
}

#[test]
fn in_list_with_null_needle_is_filtered() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(&db, "SELECT flno FROM flight WHERE aid IN (1, 2, 3)");
    assert_eq!(r.len(), 4);
}

#[test]
fn order_by_on_empty_result() {
    let db = flight_db();
    let r = run(
        &db,
        "SELECT flno FROM flight WHERE origin = 'Nowhere' ORDER BY flno DESC",
    );
    assert!(r.is_empty());
}

#[test]
fn limit_zero_returns_nothing() {
    let db = flight_db();
    let r = run(&db, "SELECT flno FROM flight LIMIT 0");
    assert!(r.is_empty());
}

#[test]
fn limit_beyond_rows_is_harmless() {
    let db = flight_db();
    let r = run(&db, "SELECT flno FROM flight LIMIT 999");
    assert_eq!(r.len(), 4);
}

#[test]
fn hash_join_skips_null_keys() {
    let mut db = flight_db();
    // A flight with a NULL aid must never match any aircraft.
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(
        &db,
        "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid",
    );
    assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
}

#[test]
fn left_join_with_null_key_pads() {
    let mut db = flight_db();
    db.insert(
        "flight",
        vec![Value::Int(99), Value::Null, Value::Null, Value::from("X")],
    );
    let r = run(
        &db,
        "SELECT T1.flno, T2.name FROM flight AS T1 LEFT JOIN aircraft AS T2 ON T1.aid = T2.aid \
         WHERE T1.flno = 99",
    );
    assert_eq!(r.rows, vec![vec![Value::Int(99), Value::Null]]);
}

#[test]
fn avg_of_single_row() {
    let db = flight_db();
    let r = run(&db, "SELECT avg(distance) FROM aircraft WHERE aid = 1");
    assert_eq!(r.rows, vec![vec![Value::Float(8430.0)]]);
}

#[test]
fn string_ordering_is_lexicographic() {
    let db = flight_db();
    let r = run(&db, "SELECT name FROM aircraft ORDER BY name ASC LIMIT 1");
    assert_eq!(r.rows, vec![vec![Value::from("Airbus A340-300")]]);
}
