/root/repo/target/release/deps/cyclesql_explain-8d5ad4672099f3e6.d: crates/explain/src/lib.rs crates/explain/src/enrich.rs crates/explain/src/graph.rs crates/explain/src/join_sem.rs crates/explain/src/nlg.rs crates/explain/src/polish.rs crates/explain/src/quality.rs crates/explain/src/sql2nl.rs crates/explain/src/nlg_tests.rs

/root/repo/target/release/deps/cyclesql_explain-8d5ad4672099f3e6: crates/explain/src/lib.rs crates/explain/src/enrich.rs crates/explain/src/graph.rs crates/explain/src/join_sem.rs crates/explain/src/nlg.rs crates/explain/src/polish.rs crates/explain/src/quality.rs crates/explain/src/sql2nl.rs crates/explain/src/nlg_tests.rs

crates/explain/src/lib.rs:
crates/explain/src/enrich.rs:
crates/explain/src/graph.rs:
crates/explain/src/join_sem.rs:
crates/explain/src/nlg.rs:
crates/explain/src/polish.rs:
crates/explain/src/quality.rs:
crates/explain/src/sql2nl.rs:
crates/explain/src/nlg_tests.rs:
