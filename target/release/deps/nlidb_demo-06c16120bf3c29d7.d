/root/repo/target/release/deps/nlidb_demo-06c16120bf3c29d7.d: examples/nlidb_demo.rs

/root/repo/target/release/deps/nlidb_demo-06c16120bf3c29d7: examples/nlidb_demo.rs

examples/nlidb_demo.rs:
