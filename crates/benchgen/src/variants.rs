//! Benchmark variants: question perturbations modelling SPIDER-REALISTIC,
//! SPIDER-SYN, and SPIDER-DK.
//!
//! - **Realistic** removes explicit column-name mentions, forcing models to
//!   map vague phrasings onto schema items.
//! - **Syn** substitutes schema-related terms with hand-picked synonyms,
//!   breaking lexical matching.
//! - **DK** rephrases values and conditions with domain knowledge the
//!   surface text no longer states directly.
//!
//! The perturbations apply to the NL question only; the gold SQL is
//! unchanged — exactly the construction of the original datasets. Each
//! variant also carries a *perturbation severity* in `[0, 1]` used by the
//! simulated translation models (real models degrade on these variants; the
//! severity drives that calibrated degradation).

use serde::{Deserialize, Serialize};

/// The benchmark family a suite belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// The base SPIDER-like suite.
    Spider,
    /// Column mentions removed.
    Realistic,
    /// Synonym substitution.
    Syn,
    /// Domain-knowledge phrasing.
    Dk,
    /// The ScienceBenchmark-like suite.
    Science,
}

impl Variant {
    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Spider => "SPIDER",
            Variant::Realistic => "REALISTIC",
            Variant::Syn => "SYN",
            Variant::Dk => "DK",
            Variant::Science => "SCIENCE",
        }
    }

    /// How strongly the variant perturbs model inputs (0 = none).
    pub fn severity(self) -> f64 {
        match self {
            Variant::Spider => 0.0,
            Variant::Realistic => 0.35,
            Variant::Syn => 0.45,
            Variant::Dk => 0.55,
            Variant::Science => 0.25,
        }
    }
}

/// Synonym map used by the SYN variant (schema term → handpicked synonym).
const SYNONYMS: &[(&str, &str)] = &[
    ("name", "title"),
    ("population", "populace size"),
    ("continent", "landmass"),
    ("language", "tongue"),
    ("country", "nation"),
    ("city", "town"),
    ("flight", "air trip"),
    ("aircraft", "airplane"),
    ("origin", "departure place"),
    ("destination", "arrival place"),
    ("singer", "vocalist"),
    ("concert", "show"),
    ("age", "years of age"),
    ("grade", "school year"),
    ("student", "pupil"),
    ("pet", "companion animal"),
    ("weight", "mass"),
    ("company", "firm"),
    ("industry", "sector"),
    ("revenue", "earnings"),
    ("customer", "client"),
    ("product", "item"),
    ("price", "cost"),
    ("author", "writer"),
    ("book", "volume"),
    ("genre", "category"),
    ("gene", "genetic locus"),
    ("mutation", "variant"),
    ("project", "grant"),
    ("institution", "organisation"),
    ("magnitude", "brightness"),
    ("redshift", "z value"),
];

/// Vague replacements used by the REALISTIC variant (column phrase → vague
/// wording that no longer names the column).
const VAGUE: &[(&str, &str)] = &[
    ("population", "size"),
    ("surface area", "extent"),
    ("distance", "range"),
    ("price", "how much it costs"),
    ("pages", "length"),
    ("revenue", "how much it makes"),
    ("weight", "how heavy it is"),
    ("capacity", "how many fit"),
    ("grade", "year"),
    ("age", "how old"),
    ("magnitude", "how bright it looks"),
    ("budget", "funding"),
];

/// Domain-knowledge rephrasings used by the DK variant.
const DK_PHRASES: &[(&str, &str)] = &[
    ("Europe", "the old continent"),
    ("North America", "the continent of Canada and the US"),
    ("English", "the language of England"),
    ("French", "the language spoken in Paris"),
    ("dog", "man's best friend"),
    ("cat", "the feline pet"),
    ("Technology", "the tech sector"),
    ("fiction", "made-up stories"),
    ("lung", "the respiratory organ"),
    ("star", "a sun-like body"),
    ("quasar", "an active galactic nucleus"),
    ("greater than", "exceeding"),
    ("at least", "no fewer than"),
];

/// Applies a variant's perturbation to a question.
pub fn perturb_question(question: &str, variant: Variant) -> String {
    match variant {
        Variant::Spider | Variant::Science => question.to_string(),
        Variant::Syn => replace_all(question, SYNONYMS),
        Variant::Realistic => replace_all(question, VAGUE),
        Variant::Dk => replace_all(question, DK_PHRASES),
    }
}

fn replace_all(q: &str, map: &[(&str, &str)]) -> String {
    let mut out = q.to_string();
    for (from, to) in map {
        // Case-sensitive first, then capitalized form.
        out = out.replace(from, to);
        let cap = capitalize(from);
        if out.contains(&cap) {
            out = out.replace(&cap, &capitalize(to));
        }
    }
    out
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spider_is_identity() {
        let q = "How many countries are there?";
        assert_eq!(perturb_question(q, Variant::Spider), q);
    }

    #[test]
    fn syn_substitutes_schema_terms() {
        let q = "What is the population of the country France?";
        let p = perturb_question(q, Variant::Syn);
        assert!(p.contains("populace size"), "{p}");
        assert!(p.contains("nation"), "{p}");
        assert!(!p.contains("population"), "{p}");
    }

    #[test]
    fn realistic_removes_column_mentions() {
        let q = "List the names of countries whose population is greater than 1000.";
        let p = perturb_question(q, Variant::Realistic);
        assert!(!p.contains("population"), "{p}");
        assert!(p.contains("size"), "{p}");
    }

    #[test]
    fn dk_requires_domain_knowledge() {
        let q = "Which cities are in European countries where English is not the official language?";
        let p = perturb_question(q, Variant::Dk);
        assert!(p.contains("the language of England"), "{p}");
    }

    #[test]
    fn severity_ordering_matches_paper_difficulty() {
        assert!(Variant::Spider.severity() < Variant::Realistic.severity());
        assert!(Variant::Realistic.severity() < Variant::Syn.severity());
        assert!(Variant::Syn.severity() < Variant::Dk.severity());
    }

    #[test]
    fn capitalized_terms_also_replaced() {
        let p = perturb_question("Country names please.", Variant::Syn);
        assert!(p.starts_with("Nation"), "{p}");
    }
}

#[cfg(test)]
mod suite_variant_tests {
    use super::*;
    use crate::suite::{build_spider_suite, SuiteConfig};

    #[test]
    fn variants_share_gold_sql_and_ids_with_base() {
        let cfg = SuiteConfig { seed: 3, train_per_template: 1, eval_per_template: 1 };
        let base = build_spider_suite(Variant::Spider, cfg);
        for v in [Variant::Realistic, Variant::Syn, Variant::Dk] {
            let variant = build_spider_suite(v, cfg);
            assert_eq!(base.dev.len(), variant.dev.len(), "{v:?}");
            for (a, b) in base.dev.iter().zip(&variant.dev) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.gold_sql, b.gold_sql);
                assert_eq!(a.base_question, b.base_question);
            }
        }
    }

    #[test]
    fn perturbation_is_idempotent_per_variant() {
        for v in [Variant::Realistic, Variant::Syn, Variant::Dk] {
            let q = "Which countries have a population greater than 1000 in Europe?";
            let once = perturb_question(q, v);
            let twice = perturb_question(&once, v);
            assert_eq!(once, twice, "{v:?}");
        }
    }

    #[test]
    fn science_variant_is_identity_but_flagged() {
        assert_eq!(Variant::Science.severity(), 0.25);
        assert_eq!(
            perturb_question("How many genes are there?", Variant::Science),
            "How many genes are there?"
        );
    }
}
