//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! just enough for the integration tests, the CI smoke job's driver, and
//! `serve_bench --net`'s closed/open-loop load generators. Speaks only
//! what the server emits: `Content-Length`-framed responses.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server asked to close the connection.
    pub fn closes(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with a read timeout so a hung server fails tests instead
    /// of wedging them.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.send_request(method, path, body)?;
        self.read_response()
    }

    /// Serializes and sends a request without reading the response
    /// (pipelining support).
    pub fn send_request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        let body = body.unwrap_or("");
        let wire = format!(
            "{method} {path} HTTP/1.1\r\nhost: cyclesql\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(wire.as_bytes())
    }

    /// Sends raw bytes as-is (malformed-input tests, byte-at-a-time
    /// writes).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one `Content-Length`-framed response.
    pub fn read_response(&mut self) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| {
                let (n, v) = line.split_once(':')?;
                Some((n.trim().to_ascii_lowercase(), v.trim().to_string()))
            })
            .collect();
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        self.buf.drain(..head_end + 4);
        while self.buf.len() < length {
            self.fill()?;
        }
        let body = self.buf.drain(..length).collect();
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut tmp = [0u8; 4096];
        let n = self.stream.read(&mut tmp)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&tmp[..n]);
        Ok(())
    }
}
