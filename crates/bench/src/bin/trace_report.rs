//! Tracing-overhead benchmark and trace inspector for the serving engine.
//!
//! Drives the same closed-loop workload through `cyclesql-serve` four
//! times — tracing **off** (plain [`ServiceEngine::start`]), tracing **on**
//! (a root `serve` span per request with per-candidate and per-stage
//! children, sampled 1-in-2 into a JSONL file), tracing on with
//! **EXPLAIN ANALYZE** operator profiles attached to every `execute`
//! span, and **windowed** telemetry (rolling per-stage histogram rings,
//! no tracing) — and reports the relative overhead of each mode.
//!
//! Outputs:
//! - `BENCH_obs.json` (`--out`): elapsed / throughput / span-pipeline
//!   counters per mode plus `overhead_on_pct`, `overhead_analyze_pct`,
//!   and `overhead_window_pct`.
//! - a span JSONL file (`--jsonl`) from the traced run, which the report
//!   then re-reads to print a per-stage flame summary (count, total,
//!   mean, max per span name) to stderr.
//! - a representative EXPLAIN ANALYZE operator tree and a Prometheus text
//!   dump of the traced run's metrics, both to stderr.
//!
//! `--assert-off-zero` additionally exits non-zero unless the untraced
//! run left every span-pipeline counter at exactly zero (the CI gate for
//! the zero-cost-when-disabled contract).
//!
//! Usage: `trace_report [--requests N] [--workers N] [--out PATH]
//! [--jsonl PATH] [--quick] [--assert-off-zero]`

use cyclesql_benchgen::{build_spider_suite, BenchmarkItem, SuiteConfig, Variant};
use cyclesql_core::{CycleSql, LoopVerifier};
use cyclesql_models::{ModelProfile, SimulatedModel};
use cyclesql_nli::AlwaysAcceptVerifier;
use cyclesql_obs::{
    parse_jsonl_line, stage_summary, AttrValue, JsonlSink, MemorySink, ObsCounters,
    ObsCountersSnapshot, ParsedSpan, SamplePolicy, SamplingSink, SpanSink, Tracer, WindowConfig,
};
use cyclesql_serve::{render_all, Catalog, ServeConfig, ServeRequest, ServiceEngine};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ModeResult {
    elapsed_secs: f64,
    throughput_rps: f64,
    counters: ObsCountersSnapshot,
}

fn workload(requests: usize, quick: bool) -> (Arc<Catalog>, Vec<Arc<BenchmarkItem>>) {
    let config = if quick {
        SuiteConfig { seed: 0x0B5, train_per_template: 1, eval_per_template: 2 }
    } else {
        SuiteConfig { seed: 0x0B5, ..SuiteConfig::default() }
    };
    let suite = build_spider_suite(Variant::Spider, config);
    let catalog = Arc::new(Catalog::from_suites([&suite]));
    let distinct: Vec<Arc<BenchmarkItem>> =
        suite.dev.iter().cloned().map(Arc::new).collect();
    let items: Vec<Arc<BenchmarkItem>> =
        (0..requests).map(|i| Arc::clone(&distinct[i % distinct.len()])).collect();
    (catalog, items)
}

fn cycle() -> CycleSql {
    // AlwaysAccept drives the full pipeline (execute → provenance →
    // explain → verify) on every request.
    CycleSql::new(LoopVerifier::AlwaysAccept(AlwaysAcceptVerifier))
}

/// Closed loop: `2 × workers` clients, each issuing its next request as
/// soon as the previous one completes.
fn drive(engine: &ServiceEngine, items: &[Arc<BenchmarkItem>], clients: usize) -> f64 {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                engine
                    .call(ServeRequest { item: Arc::clone(&items[i]) })
                    .expect("closed-loop request serves");
            });
        }
    });
    started.elapsed().as_secs_f64()
}

fn mode_result(elapsed: f64, requests: usize, counters: ObsCountersSnapshot) -> ModeResult {
    ModeResult {
        elapsed_secs: elapsed,
        throughput_rps: requests as f64 / elapsed,
        counters,
    }
}

fn mode_json(out: &mut String, name: &str, r: &ModeResult) {
    let c = &r.counters;
    let _ = write!(
        out,
        "\"{name}\":{{\"elapsed_secs\":{:.6},\"throughput_rps\":{:.3},\
         \"spans_finished\":{},\"spans_emitted\":{},\"spans_dropped\":{},\
         \"traces_sampled\":{},\"traces_discarded\":{}}}",
        r.elapsed_secs,
        r.throughput_rps,
        c.spans_finished,
        c.spans_emitted,
        c.spans_dropped,
        c.traces_sampled,
        c.traces_discarded,
    );
}

fn main() {
    let mut requests: usize = 300;
    let mut workers: usize = 4;
    let mut out_path = String::from("BENCH_obs.json");
    let mut jsonl_path = String::from("trace_spans.jsonl");
    let mut quick = false;
    let mut assert_off_zero = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args.next().and_then(|v| v.parse().ok()).expect("--requests N");
            }
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).expect("--workers N");
            }
            "--out" => out_path = args.next().expect("--out PATH"),
            "--jsonl" => jsonl_path = args.next().expect("--jsonl PATH"),
            "--quick" => quick = true,
            "--assert-off-zero" => assert_off_zero = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    if quick {
        requests = requests.min(120);
        workers = workers.min(2);
    }
    let (catalog, items) = workload(requests, quick);
    let clients = workers * 2;
    eprintln!("workload: {requests} requests, {workers} workers, {clients} clients");

    let config = || ServeConfig { workers, ..ServeConfig::default() };

    // Tracing off. The counters belong to a tracer the engine never sees;
    // they stay zero unless the untraced path touches the span pipeline.
    let off_counters = Arc::new(ObsCounters::default());
    let off = {
        let engine = ServiceEngine::start(
            Arc::clone(&catalog),
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            cycle(),
            config(),
        );
        let elapsed = drive(&engine, &items, clients);
        engine.shutdown();
        mode_result(elapsed, requests, off_counters.snapshot())
    };
    eprintln!("off     : {:.2} req/s", off.throughput_rps);
    if assert_off_zero {
        let c = &off.counters;
        let zero = c.spans_finished == 0
            && c.spans_emitted == 0
            && c.spans_dropped == 0
            && c.traces_sampled == 0
            && c.traces_discarded == 0
            && c.span_ring_overwrites == 0
            && c.request_ring_overwrites == 0;
        if !zero {
            eprintln!("FAIL: tracing-off run touched the span pipeline: {c:?}");
            std::process::exit(1);
        }
        eprintln!("tracing-off span counters all zero");
    }

    // Windowed telemetry without tracing: the rolling per-stage histogram
    // rings record every request, but no spans exist, so this isolates
    // the window bookkeeping cost.
    let window = {
        let counters = Arc::new(ObsCounters::default());
        let engine = ServiceEngine::start(
            Arc::clone(&catalog),
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            cycle(),
            ServeConfig { window: Some(WindowConfig::default()), ..config() },
        );
        let elapsed = drive(&engine, &items, clients);
        engine.shutdown();
        mode_result(elapsed, requests, counters.snapshot())
    };
    eprintln!("window  : {:.2} req/s", window.throughput_rps);

    // Tracing on: spans sampled 1-in-2 (errors always kept) into JSONL.
    let (on, on_prom) = {
        let counters = Arc::new(ObsCounters::default());
        let jsonl = Arc::new(
            JsonlSink::create(&jsonl_path, Arc::clone(&counters)).expect("create jsonl sink"),
        );
        let sampler = Arc::new(SamplingSink::new(
            jsonl.clone() as Arc<dyn SpanSink>,
            SamplePolicy { one_in: 2, always_on_error: true },
            Arc::clone(&counters),
        ));
        let tracer = Arc::new(Tracer::new(sampler as Arc<dyn SpanSink>, Arc::clone(&counters)));
        let engine = ServiceEngine::start_traced(
            Arc::clone(&catalog),
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            cycle(),
            config(),
            Arc::clone(&tracer),
            false,
        );
        let elapsed = drive(&engine, &items, clients);
        let metrics = engine.shutdown();
        jsonl.flush().expect("flush jsonl sink");
        let snapshot = counters.snapshot();
        (
            mode_result(elapsed, requests, snapshot),
            render_all(&metrics, Some(&snapshot)),
        )
    };
    eprintln!(
        "on      : {:.2} req/s, {} spans emitted, {} traces sampled",
        on.throughput_rps, on.counters.spans_emitted, on.counters.traces_sampled
    );
    if on.counters.spans_emitted == 0 {
        eprintln!("FAIL: traced run emitted no spans");
        std::process::exit(1);
    }

    // Tracing on + EXPLAIN ANALYZE, into a memory ring so the operator
    // profiles (span attributes) are inspectable.
    let (analyze, analyze_sample) = {
        let counters = Arc::new(ObsCounters::default());
        let sink = Arc::new(MemorySink::new(65_536, Arc::clone(&counters)));
        let tracer = Arc::new(Tracer::new(
            sink.clone() as Arc<dyn SpanSink>,
            Arc::clone(&counters),
        ));
        let engine = ServiceEngine::start_traced(
            Arc::clone(&catalog),
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            cycle(),
            config(),
            Arc::clone(&tracer),
            true,
        );
        let elapsed = drive(&engine, &items, clients);
        engine.shutdown();
        let sample = sink
            .records()
            .iter()
            .filter(|r| r.name == "execute")
            .find_map(|r| match r.attr("analyze") {
                Some(AttrValue::Str(text)) => Some(text.clone()),
                _ => None,
            });
        (mode_result(elapsed, requests, counters.snapshot()), sample)
    };
    eprintln!("analyze : {:.2} req/s", analyze.throughput_rps);

    let overhead = |traced: &ModeResult| {
        (traced.elapsed_secs - off.elapsed_secs) / off.elapsed_secs * 100.0
    };
    let overhead_on = overhead(&on);
    let overhead_analyze = overhead(&analyze);
    let overhead_window = overhead(&window);
    eprintln!(
        "overhead: on {overhead_on:+.2}%  analyze {overhead_analyze:+.2}%  \
         window {overhead_window:+.2}%"
    );

    // Per-stage flame summary, re-read from the JSONL artifact.
    let spans: Vec<ParsedSpan> = std::fs::read_to_string(&jsonl_path)
        .expect("read span jsonl")
        .lines()
        .filter_map(parse_jsonl_line)
        .collect();
    eprintln!("\nflame summary ({} spans from {jsonl_path}):", spans.len());
    eprintln!("{}", stage_summary(&spans));
    if let Some(text) = analyze_sample {
        eprintln!("sample EXPLAIN ANALYZE:\n{text}");
    }
    eprintln!("prometheus dump (traced run):\n{on_prom}");

    let mut json = String::from("{");
    let _ = write!(json, "\"requests\":{requests},\"workers\":{workers},");
    mode_json(&mut json, "off", &off);
    json.push(',');
    mode_json(&mut json, "on", &on);
    json.push(',');
    mode_json(&mut json, "analyze", &analyze);
    json.push(',');
    mode_json(&mut json, "window", &window);
    let _ = write!(
        json,
        ",\"overhead_on_pct\":{overhead_on:.3},\"overhead_analyze_pct\":{overhead_analyze:.3},\
         \"overhead_window_pct\":{overhead_window:.3}}}"
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path} and {jsonl_path}");
}
