//! Experiment drivers: one module per paper table/figure.
//!
//! Each driver returns a serializable result struct and renders a plain-text
//! report matching the paper's layout; the `repro` binary in `crates/bench`
//! prints them.

pub mod context;
pub mod ext_ablation;
pub mod ext_arch;
pub mod ext_human;
pub mod fig1;
pub mod fig8;
pub mod fig9;
pub mod fig10;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use context::ExperimentContext;
