//! # cyclesql-storage
//!
//! An in-memory relational engine for the CycleSQL reproduction: typed
//! values, schemas with primary/foreign keys, and a query executor covering
//! the Spider SQL subset — with per-row *lineage* tracking that the
//! provenance layer builds on.
//!
//! ```
//! use cyclesql_storage::{Database, DatabaseSchema, TableSchema, ColumnDef, DataType, Value};
//! use cyclesql_storage::exec::execute;
//! use cyclesql_sql::parse;
//!
//! let mut schema = DatabaseSchema::new("demo");
//! schema.add_table(TableSchema::new(
//!     "aircraft",
//!     vec![
//!         ColumnDef::new("aid", DataType::Int),
//!         ColumnDef::new("name", DataType::Text),
//!     ],
//! ));
//! let mut db = Database::new(schema);
//! db.insert("aircraft", vec![Value::Int(1), Value::from("Boeing 747-400")]);
//! db.insert("aircraft", vec![Value::Int(3), Value::from("Airbus A340-300")]);
//!
//! let q = parse("SELECT count(*) FROM aircraft").unwrap();
//! let result = execute(&db, &q).unwrap();
//! assert_eq!(result.rows[0][0], Value::Int(2));
//! ```

#![warn(missing_docs)]

mod batch;
pub mod compile;
pub mod error;
pub mod exec;
pub mod ir;
pub mod plan;
pub mod profile;
pub mod reference;
pub mod result;
mod run;
mod scalar;
pub mod schema;
pub mod table;
pub mod value;

#[cfg(test)]
mod compiled_tests;
#[cfg(test)]
mod exec_tests;

pub use compile::compile;
pub use error::ExecError;
pub use exec::{execute, execute_with_lineage, is_executable, ExecOutput, Lineage, SourceRef};
pub use ir::{CompiledQuery, InProbe, RunStats};
pub use plan::{describe_plan, describe_plan_analyze, PlanStep, QueryPlan};
pub use profile::{OpProfile, PlanProfile, SubProfile};
pub use result::ResultSet;
pub use run::ExecOpts;
pub use schema::{ColumnDef, DataType, DatabaseSchema, ForeignKey, TableSchema};
pub use table::{ColumnarTable, Database, Row, Table};
pub use value::{KeyValue, Value};
