//! Prometheus text-format (version 0.0.4) rendering for the engine's
//! metrics, written by hand against the exposition-format spec so the
//! export surface has zero dependencies.
//!
//! [`render_metrics`] covers every counter and per-stage histogram summary
//! in a [`MetricsSnapshot`]; [`render_observability`] appends the span
//! pipeline's own health counters (spans emitted/dropped, sampler
//! decisions) from an [`ObsCountersSnapshot`]. Both emit `# HELP` / `# TYPE`
//! headers per metric family and label stage summaries as
//! `cyclesql_stage_latency_ms{stage="execute",quantile="0.99"}`.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use cyclesql_obs::{ObsCountersSnapshot, WindowSnapshot};
use std::fmt::Write as _;

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    family(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {}", fmt_f64(value));
}

/// Prometheus floats: plain decimal, no exponent needed at our scales; an
/// integral value still renders with a trailing `.0`-free form (`42`),
/// which the format accepts.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Joins label pairs into `k="v",k2="v2"` (no braces); empty for no labels.
fn label_str(labels: &[(&str, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

/// One `name{labels} value` sample line; `labels` may be empty.
fn sample(out: &mut String, name: &str, labels: &str, value: &str) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Quantile/mean/count rows of one summary-style histogram family, with
/// `extra` labels (e.g. `shard="0"`) prepended to the per-row labels.
fn summary_rows(out: &mut String, name: &str, extra: &str, h: &HistogramSnapshot) {
    let join = |l: &str| {
        if extra.is_empty() {
            l.to_string()
        } else if l.is_empty() {
            extra.to_string()
        } else {
            format!("{extra},{l}")
        }
    };
    for (q, v) in [("0.5", h.p50_ms), ("0.95", h.p95_ms), ("0.99", h.p99_ms)] {
        sample(out, name, &join(&format!("quantile=\"{q}\"")), &fmt_f64(v));
    }
    sample(out, &format!("{name}_mean"), &join(""), &fmt_f64(h.mean_ms));
    sample(out, &format!("{name}_count"), &join(""), &h.count.to_string());
}

fn stage_rows(out: &mut String, stage: &str, h: &HistogramSnapshot) {
    stage_rows_labeled(out, "", stage, h);
}

fn stage_rows_labeled(out: &mut String, extra: &str, stage: &str, h: &HistogramSnapshot) {
    summary_rows(
        out,
        "cyclesql_stage_latency_ms",
        &if extra.is_empty() {
            format!("stage=\"{stage}\"")
        } else {
            format!("{extra},stage=\"{stage}\"")
        },
        h,
    );
}

/// Renders a [`MetricsSnapshot`] as Prometheus exposition text.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    counter(&mut out, "cyclesql_requests_admitted_total", "Requests admitted past backpressure.", snapshot.admitted);
    counter(&mut out, "cyclesql_requests_completed_total", "Requests fully served.", snapshot.completed);
    counter(&mut out, "cyclesql_requests_shed_total", "Requests rejected at admission by the shed policy.", snapshot.shed);
    counter(&mut out, "cyclesql_requests_timeout_total", "Requests abandoned by their deadline.", snapshot.timeouts);
    counter(&mut out, "cyclesql_requests_unknown_db_total", "Requests naming an unserved database.", snapshot.unknown_db);
    counter(&mut out, "cyclesql_plan_cache_hits_total", "Compiled-plan cache hits.", snapshot.cache_hits);
    counter(&mut out, "cyclesql_plan_cache_misses_total", "Compiled-plan cache misses.", snapshot.cache_misses);
    gauge(&mut out, "cyclesql_plan_cache_hit_rate", "Plan-cache hits over lookups, in [0, 1].", snapshot.cache_hit_rate);
    counter(&mut out, "cyclesql_verifier_accepts_total", "Accepting verifier verdicts.", snapshot.verifier_accepts);
    counter(&mut out, "cyclesql_verifier_rejects_total", "Rejecting verifier verdicts.", snapshot.verifier_rejects);
    gauge(&mut out, "cyclesql_loop_iterations_avg", "Mean candidate-loop iterations per completed request.", snapshot.avg_iterations);
    family(
        &mut out,
        "cyclesql_stage_latency_ms",
        "Per-stage latency summary (bucket-resolution quantiles, ms).",
        "summary",
    );
    let s = &snapshot.stages;
    for (stage, h) in [
        ("translate", &s.translate),
        ("execute", &s.execute),
        ("provenance", &s.provenance),
        ("explain", &s.explain),
        ("verify", &s.verify),
        ("total", &s.total),
    ] {
        stage_rows(&mut out, stage, h);
    }
    family(
        &mut out,
        "cyclesql_queue_wait_ms",
        "Admission-queue wait (submit to worker dequeue, ms).",
        "summary",
    );
    summary_rows(&mut out, "cyclesql_queue_wait_ms", "", &snapshot.queue_wait);
    out
}

/// Renders several engines' snapshots as one exposition page, each sample
/// labeled `shard="<id>"`. Every family keeps a single `# HELP` / `# TYPE`
/// header (required by the format), with one labeled sample per shard —
/// the shape the network tier's `/metrics` endpoint serves when the
/// catalog is split across engine instances.
pub fn render_metrics_sharded(shards: &[(usize, MetricsSnapshot)]) -> String {
    let mut out = String::new();
    let counters: [(&str, &str, fn(&MetricsSnapshot) -> u64); 9] = [
        ("cyclesql_requests_admitted_total", "Requests admitted past backpressure.", |s| s.admitted),
        ("cyclesql_requests_completed_total", "Requests fully served.", |s| s.completed),
        ("cyclesql_requests_shed_total", "Requests rejected at admission by the shed policy.", |s| s.shed),
        ("cyclesql_requests_timeout_total", "Requests abandoned by their deadline.", |s| s.timeouts),
        ("cyclesql_requests_unknown_db_total", "Requests naming an unserved database.", |s| s.unknown_db),
        ("cyclesql_plan_cache_hits_total", "Compiled-plan cache hits.", |s| s.cache_hits),
        ("cyclesql_plan_cache_misses_total", "Compiled-plan cache misses.", |s| s.cache_misses),
        ("cyclesql_verifier_accepts_total", "Accepting verifier verdicts.", |s| s.verifier_accepts),
        ("cyclesql_verifier_rejects_total", "Rejecting verifier verdicts.", |s| s.verifier_rejects),
    ];
    for (name, help, get) in counters {
        family(&mut out, name, help, "counter");
        for (shard, snap) in shards {
            let labels = label_str(&[("shard", shard.to_string())]);
            sample(&mut out, name, &labels, &get(snap).to_string());
        }
    }
    let gauges: [(&str, &str, fn(&MetricsSnapshot) -> f64); 2] = [
        ("cyclesql_plan_cache_hit_rate", "Plan-cache hits over lookups, in [0, 1].", |s| {
            s.cache_hit_rate
        }),
        ("cyclesql_loop_iterations_avg", "Mean candidate-loop iterations per completed request.", |s| {
            s.avg_iterations
        }),
    ];
    for (name, help, get) in gauges {
        family(&mut out, name, help, "gauge");
        for (shard, snap) in shards {
            let labels = label_str(&[("shard", shard.to_string())]);
            sample(&mut out, name, &labels, &fmt_f64(get(snap)));
        }
    }
    family(
        &mut out,
        "cyclesql_stage_latency_ms",
        "Per-stage latency summary (bucket-resolution quantiles, ms).",
        "summary",
    );
    for (shard, snap) in shards {
        let extra = label_str(&[("shard", shard.to_string())]);
        let s = &snap.stages;
        for (stage, h) in [
            ("translate", &s.translate),
            ("execute", &s.execute),
            ("provenance", &s.provenance),
            ("explain", &s.explain),
            ("verify", &s.verify),
            ("total", &s.total),
        ] {
            stage_rows_labeled(&mut out, &extra, stage, h);
        }
    }
    family(
        &mut out,
        "cyclesql_queue_wait_ms",
        "Admission-queue wait (submit to worker dequeue, ms).",
        "summary",
    );
    for (shard, snap) in shards {
        let extra = label_str(&[("shard", shard.to_string())]);
        summary_rows(&mut out, "cyclesql_queue_wait_ms", &extra, &snap.queue_wait);
    }
    out
}

/// Renders the tracing pipeline's own counters as Prometheus exposition
/// text (appended after [`render_metrics`] by [`render_all`]).
pub fn render_observability(counters: &ObsCountersSnapshot) -> String {
    let mut out = String::new();
    counter(&mut out, "cyclesql_obs_spans_finished_total", "Spans finished and handed to the sink chain.", counters.spans_finished);
    counter(&mut out, "cyclesql_obs_spans_emitted_total", "Span records delivered to a terminal sink.", counters.spans_emitted);
    counter(&mut out, "cyclesql_obs_spans_dropped_total", "Span records discarded (unsampled trace or ring overwrite).", counters.spans_dropped);
    counter(&mut out, "cyclesql_obs_traces_sampled_total", "Traces kept by the sampler.", counters.traces_sampled);
    counter(&mut out, "cyclesql_obs_traces_discarded_total", "Traces discarded by the sampler.", counters.traces_discarded);
    counter(&mut out, "cyclesql_obs_span_ring_overwrites_total", "Span-ring slots overwritten before being read.", counters.span_ring_overwrites);
    counter(&mut out, "cyclesql_obs_request_ring_overwrites_total", "Request-summary-ring slots overwritten before being read.", counters.request_ring_overwrites);
    out
}

/// Renders per-stage rolling-window telemetry as OpenMetrics-style
/// exposition text, exemplars included: each populated latency bucket may
/// carry `# {trace_id="...",sql="..."} value` — the trace id and SQL
/// digest of a recent request that landed in that bucket — so a scrape
/// can link a histogram spike to one concrete trace.
///
/// `shard` adds a `shard="<id>"` label to every sample (pass `None` for a
/// single-engine page). Histogram rows are cumulative (`le` in µs), with
/// the standard `+Inf`, `_count`, and `_sum` rows per stage.
pub fn render_windows(windows: &[(&'static str, WindowSnapshot)], shard: Option<usize>) -> String {
    let mut out = String::new();
    render_windows_into(&mut out, windows, shard, true);
    out
}

/// Renders several shards' window snapshots as one page with a single
/// header per family.
pub fn render_windows_sharded(
    shards: &[(usize, Vec<(&'static str, WindowSnapshot)>)],
) -> String {
    let mut out = String::new();
    let mut first = true;
    for (shard, windows) in shards {
        render_windows_into(&mut out, windows, Some(*shard), first);
        first = false;
    }
    out
}

fn render_windows_into(
    out: &mut String,
    windows: &[(&'static str, WindowSnapshot)],
    shard: Option<usize>,
    headers: bool,
) {
    let base = |stage: &str| match shard {
        Some(s) => format!("shard=\"{s}\",stage=\"{stage}\""),
        None => format!("stage=\"{stage}\""),
    };
    if headers {
        family(
            out,
            "cyclesql_window_requests_per_sec",
            "Request rate over the rolling window.",
            "gauge",
        );
    }
    for (stage, w) in windows {
        sample(
            out,
            "cyclesql_window_requests_per_sec",
            &base(stage),
            &fmt_f64(w.rate_per_sec),
        );
    }
    if headers {
        family(
            out,
            "cyclesql_window_error_rate",
            "Errored requests over requests in the rolling window, in [0, 1].",
            "gauge",
        );
    }
    for (stage, w) in windows {
        sample(
            out,
            "cyclesql_window_error_rate",
            &base(stage),
            &fmt_f64(w.error_rate),
        );
    }
    if headers {
        family(
            out,
            "cyclesql_window_latency_us",
            "Rolling-window latency histogram (µs) with trace exemplars.",
            "histogram",
        );
    }
    for (stage, w) in windows {
        let labels = base(stage);
        let mut cumulative = 0u64;
        for (b, n) in w.hist.iter().enumerate() {
            cumulative += n;
            // Keep the page bounded: only buckets that changed the
            // cumulative count get a row (plus +Inf below).
            if *n == 0 {
                continue;
            }
            let le = cyclesql_obs::latency_bucket_upper_us(b);
            let mut line = format!(
                "cyclesql_window_latency_us_bucket{{{labels},le=\"{le}\"}} {cumulative}"
            );
            if let Some(ex) = &w.exemplars[b] {
                let _ = write!(
                    line,
                    " # {{trace_id=\"{}\",sql=\"{:016x}\"}} {}",
                    cyclesql_obs::format_trace_id(ex.trace_id),
                    ex.sql_digest,
                    ex.value_us
                );
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "cyclesql_window_latency_us_bucket{{{labels},le=\"+Inf\"}} {}",
            w.count
        );
        sample(
            out,
            "cyclesql_window_latency_us_count",
            &labels,
            &w.count.to_string(),
        );
        sample(
            out,
            "cyclesql_window_latency_us_sum",
            &labels,
            &w.sum_us.to_string(),
        );
    }
}

/// One text page with both the serving metrics and (when the engine is
/// traced) the span-pipeline counters.
pub fn render_all(snapshot: &MetricsSnapshot, counters: Option<&ObsCountersSnapshot>) -> String {
    let mut out = render_metrics(snapshot);
    if let Some(counters) = counters {
        out.push_str(&render_observability(counters));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use cyclesql_core::StageTimings;
    use std::time::Duration;

    #[test]
    fn renders_every_counter_family_once() {
        let m = Metrics::default();
        m.stages.record(&StageTimings::default(), Duration::from_millis(3));
        let text = render_metrics(&m.snapshot(7, 3));
        for name in [
            "cyclesql_requests_admitted_total",
            "cyclesql_requests_completed_total",
            "cyclesql_requests_shed_total",
            "cyclesql_requests_timeout_total",
            "cyclesql_requests_unknown_db_total",
            "cyclesql_plan_cache_hits_total",
            "cyclesql_plan_cache_misses_total",
            "cyclesql_plan_cache_hit_rate",
            "cyclesql_verifier_accepts_total",
            "cyclesql_verifier_rejects_total",
            "cyclesql_loop_iterations_avg",
            "cyclesql_stage_latency_ms",
            "cyclesql_queue_wait_ms",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {name} ")).count(),
                1,
                "{name} typed exactly once"
            );
        }
        assert!(text.contains("cyclesql_plan_cache_hits_total 7"));
        assert!(text.contains("cyclesql_plan_cache_hit_rate 0.7"));
        assert!(text.contains("cyclesql_stage_latency_ms_count{stage=\"total\"} 1"));
        assert!(text.contains("{stage=\"execute\",quantile=\"0.99\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in `{line}`");
            assert!(parts.next().is_some(), "no metric name in `{line}`");
        }
    }

    #[test]
    fn sharded_rendering_keeps_one_header_per_family() {
        let m0 = Metrics::default();
        m0.admitted.store(5, std::sync::atomic::Ordering::Relaxed);
        m0.stages.record(&StageTimings::default(), Duration::from_millis(2));
        m0.queue_wait.record(Duration::from_micros(700));
        let m1 = Metrics::default();
        m1.admitted.store(9, std::sync::atomic::Ordering::Relaxed);
        let shards = vec![(0usize, m0.snapshot(3, 1)), (1usize, m1.snapshot(0, 0))];
        let text = render_metrics_sharded(&shards);
        assert_eq!(
            text.matches("# TYPE cyclesql_requests_admitted_total ").count(),
            1,
            "one TYPE header even with two shards"
        );
        assert!(text.contains("cyclesql_requests_admitted_total{shard=\"0\"} 5"));
        assert!(text.contains("cyclesql_requests_admitted_total{shard=\"1\"} 9"));
        assert!(text.contains("{shard=\"0\",stage=\"total\",quantile=\"0.99\"}"));
        assert!(text.contains("cyclesql_queue_wait_ms_count{shard=\"0\"} 1"));
        // Every non-comment line still parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in `{line}`");
            assert!(parts.next().is_some(), "no metric name in `{line}`");
        }
    }

    #[test]
    fn observability_counters_render_and_append() {
        let counters = ObsCountersSnapshot {
            spans_finished: 10,
            spans_emitted: 8,
            spans_dropped: 2,
            traces_sampled: 1,
            traces_discarded: 1,
            span_ring_overwrites: 2,
            request_ring_overwrites: 4,
        };
        let text = render_observability(&counters);
        assert!(text.contains("cyclesql_obs_spans_emitted_total 8"));
        assert!(text.contains("cyclesql_obs_spans_dropped_total 2"));
        assert!(text.contains("cyclesql_obs_span_ring_overwrites_total 2"));
        assert!(text.contains("cyclesql_obs_request_ring_overwrites_total 4"));

        let m = Metrics::default();
        let all = render_all(&m.snapshot(0, 0), Some(&counters));
        assert!(all.contains("cyclesql_requests_admitted_total 0"));
        assert!(all.contains("cyclesql_obs_traces_sampled_total 1"));
        let without = render_all(&m.snapshot(0, 0), None);
        assert!(!without.contains("cyclesql_obs_"));
    }

    #[test]
    fn window_rendering_carries_openmetrics_exemplars() {
        use cyclesql_obs::{latency_bucket, Exemplar, Window, WindowConfig};
        let w = Window::new(WindowConfig {
            bucket_ms: 1_000,
            buckets: 60,
        });
        w.record_at(
            100,
            1_500,
            false,
            Some(Exemplar {
                trace_id: 0x8448_eb21_1c80_319c,
                sql_digest: 0xdead_beef,
                value_us: 1_500,
            }),
        );
        w.record_at(200, 10, true, None);
        let windows = vec![("total", w.snapshot_at(500))];
        let text = render_windows(&windows, None);
        assert!(text.contains("# TYPE cyclesql_window_latency_us histogram"));
        assert!(text.contains("cyclesql_window_requests_per_sec{stage=\"total\"}"));
        assert!(text.contains("cyclesql_window_error_rate{stage=\"total\"} 0.5"));
        // The exemplar rides its bucket row in OpenMetrics syntax.
        let le = cyclesql_obs::latency_bucket_upper_us(latency_bucket(1_500));
        let bucket_line = text
            .lines()
            .find(|l| l.contains(&format!("le=\"{le}\"")))
            .expect("exemplar bucket row");
        assert!(
            bucket_line.contains("# {trace_id=\"8448eb211c80319c\",sql=\"00000000deadbeef\"} 1500"),
            "exemplar on `{bucket_line}`"
        );
        assert!(text.contains("le=\"+Inf\"}} 2") || text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("cyclesql_window_latency_us_count{stage=\"total\"} 2"));
        assert!(text.contains("cyclesql_window_latency_us_sum{stage=\"total\"} 1510"));

        // Sharded form: single header, shard labels on every row.
        let sharded = render_windows_sharded(&[
            (0, vec![("total", w.snapshot_at(500))]),
            (1, vec![("total", w.snapshot_at(500))]),
        ]);
        assert_eq!(
            sharded.matches("# TYPE cyclesql_window_latency_us ").count(),
            1
        );
        assert!(sharded.contains("shard=\"0\",stage=\"total\""));
        assert!(sharded.contains("shard=\"1\",stage=\"total\""));
    }
}
