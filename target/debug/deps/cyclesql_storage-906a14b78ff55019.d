/root/repo/target/debug/deps/cyclesql_storage-906a14b78ff55019.d: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/compile.rs crates/storage/src/error.rs crates/storage/src/exec.rs crates/storage/src/ir.rs crates/storage/src/plan.rs crates/storage/src/profile.rs crates/storage/src/reference.rs crates/storage/src/result.rs crates/storage/src/run.rs crates/storage/src/scalar.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_storage-906a14b78ff55019.rmeta: crates/storage/src/lib.rs crates/storage/src/batch.rs crates/storage/src/compile.rs crates/storage/src/error.rs crates/storage/src/exec.rs crates/storage/src/ir.rs crates/storage/src/plan.rs crates/storage/src/profile.rs crates/storage/src/reference.rs crates/storage/src/result.rs crates/storage/src/run.rs crates/storage/src/scalar.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/value.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/batch.rs:
crates/storage/src/compile.rs:
crates/storage/src/error.rs:
crates/storage/src/exec.rs:
crates/storage/src/ir.rs:
crates/storage/src/plan.rs:
crates/storage/src/profile.rs:
crates/storage/src/reference.rs:
crates/storage/src/result.rs:
crates/storage/src/run.rs:
crates/storage/src/scalar.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
