/root/repo/target/debug/deps/cyclesql_provenance-cbcb6f60ed7308d4.d: crates/provenance/src/lib.rs crates/provenance/src/capture.rs crates/provenance/src/empty.rs crates/provenance/src/error.rs crates/provenance/src/rewrite.rs crates/provenance/src/where_prov.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_provenance-cbcb6f60ed7308d4.rmeta: crates/provenance/src/lib.rs crates/provenance/src/capture.rs crates/provenance/src/empty.rs crates/provenance/src/error.rs crates/provenance/src/rewrite.rs crates/provenance/src/where_prov.rs Cargo.toml

crates/provenance/src/lib.rs:
crates/provenance/src/capture.rs:
crates/provenance/src/empty.rs:
crates/provenance/src/error.rs:
crates/provenance/src/rewrite.rs:
crates/provenance/src/where_prov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
