/root/repo/target/release/deps/cyclesql_nli-8ae36353164988b3.d: crates/nli/src/lib.rs crates/nli/src/features.rs crates/nli/src/loss.rs crates/nli/src/mlp.rs crates/nli/src/model.rs crates/nli/src/verifier.rs

/root/repo/target/release/deps/libcyclesql_nli-8ae36353164988b3.rlib: crates/nli/src/lib.rs crates/nli/src/features.rs crates/nli/src/loss.rs crates/nli/src/mlp.rs crates/nli/src/model.rs crates/nli/src/verifier.rs

/root/repo/target/release/deps/libcyclesql_nli-8ae36353164988b3.rmeta: crates/nli/src/lib.rs crates/nli/src/features.rs crates/nli/src/loss.rs crates/nli/src/mlp.rs crates/nli/src/model.rs crates/nli/src/verifier.rs

crates/nli/src/lib.rs:
crates/nli/src/features.rs:
crates/nli/src/loss.rs:
crates/nli/src/mlp.rs:
crates/nli/src/model.rs:
crates/nli/src/verifier.rs:
