//! Query result sets and bag-semantics equivalence.

use crate::value::{KeyValue, Value};
use serde::{Deserialize, Serialize};

/// A query result: column display names plus rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Display names, e.g. `count(T2.language)` or `T1.name`.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Multiset ("bag semantics") equivalence, ignoring row order and column
    /// names. This mirrors the Spider evaluation script's execution-accuracy
    /// comparison.
    pub fn bag_eq(&self, other: &ResultSet) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        // Allocation-light row keys: KeyValue equality matches group_key
        // string equality (pinned in value.rs), sorted under its arbitrary
        // total order for multiset comparison.
        let keyed = |rows: &[Vec<Value>]| -> Vec<Vec<KeyValue>> {
            let mut keys: Vec<Vec<KeyValue>> = rows
                .iter()
                .map(|r| r.iter().map(Value::key).collect())
                .collect();
            keys.sort();
            keys
        };
        keyed(&self.rows) == keyed(&other.rows)
    }

    /// A deterministic fingerprint of the bag of rows (used by the
    /// test-suite metric to compare across database variants cheaply).
    pub fn fingerprint(&self) -> String {
        let mut keys: Vec<String> = self.rows.iter().map(|r| row_key(r)).collect();
        keys.sort();
        format!("{}cols|{}", self.columns.len(), keys.join("\n"))
    }
}

fn row_key(row: &[Value]) -> String {
    let parts: Vec<String> = row.iter().map(Value::group_key).collect();
    parts.join("\u{1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(cols: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn bag_eq_ignores_row_order() {
        let a = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = rs(&["y"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn bag_eq_is_duplicate_sensitive() {
        let a = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        let b = rs(&["x"], vec![vec![Value::Int(1)]]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn bag_eq_collapses_numeric_representation() {
        let a = rs(&["x"], vec![vec![Value::Int(2)]]);
        let b = rs(&["x"], vec![vec![Value::Float(2.0)]]);
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn bag_eq_checks_arity() {
        let a = rs(&["x"], vec![vec![Value::Int(1)]]);
        let b = rs(&["x", "y"], vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn nulls_compare_equal_in_bags() {
        let a = rs(&["x"], vec![vec![Value::Null]]);
        let b = rs(&["x"], vec![vec![Value::Null]]);
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn fingerprint_stable_under_reorder() {
        let a = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = rs(&["x"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
