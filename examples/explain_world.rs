//! Table IV case study: generates data-grounded NL explanations for five
//! representative queries on the world database, raw and polished, next to
//! the SQL2NL baseline — the qualitative-evaluation scenario.

use cyclesql_core::experiments::{fig10, table4, ExperimentContext};
use cyclesql_explain::sql_to_nl;
use cyclesql_sql::parse;

fn main() {
    eprintln!("building suites and training the verifier (quick config)...");
    let ctx = ExperimentContext::quick();

    let cases = table4::run(&ctx);
    for entry in &cases.entries {
        println!("=== {} ===", entry.label);
        println!("NL query      : {}", entry.question);
        println!("SQL           : {}", entry.sql);
        println!("result        : {}", entry.result);
        println!("explanation   : {}", entry.explanation);
        println!("polished      : {}", entry.polished);
        // The baseline SQL2NL rendering for contrast.
        let q = parse(&entry.sql).expect("case SQL parses");
        let db = ctx
            .spider
            .databases
            .get("world_1")
            .expect("world database present");
        let baseline = sql_to_nl(db, &q);
        println!("sql2nl (base) : {}", baseline.text);
        println!();
    }

    let study = fig10::run(&ctx);
    println!("{}", study.render());
}
