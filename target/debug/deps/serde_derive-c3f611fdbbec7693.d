/root/repo/target/debug/deps/serde_derive-c3f611fdbbec7693.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-c3f611fdbbec7693.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
