/root/repo/target/release/deps/provenance_tour-be722d9413150791.d: examples/provenance_tour.rs

/root/repo/target/release/deps/provenance_tour-be722d9413150791: examples/provenance_tour.rs

examples/provenance_tour.rs:
