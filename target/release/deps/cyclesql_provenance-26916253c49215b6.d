/root/repo/target/release/deps/cyclesql_provenance-26916253c49215b6.d: crates/provenance/src/lib.rs crates/provenance/src/capture.rs crates/provenance/src/empty.rs crates/provenance/src/error.rs crates/provenance/src/rewrite.rs crates/provenance/src/where_prov.rs

/root/repo/target/release/deps/cyclesql_provenance-26916253c49215b6: crates/provenance/src/lib.rs crates/provenance/src/capture.rs crates/provenance/src/empty.rs crates/provenance/src/error.rs crates/provenance/src/rewrite.rs crates/provenance/src/where_prov.rs

crates/provenance/src/lib.rs:
crates/provenance/src/capture.rs:
crates/provenance/src/empty.rs:
crates/provenance/src/error.rs:
crates/provenance/src/rewrite.rs:
crates/provenance/src/where_prov.rs:
