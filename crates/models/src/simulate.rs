//! The simulated translation models: calibrated candidate-list generators.
//!
//! A simulated model never reveals correctness to the caller — it returns a
//! ranked list of SQL strings exactly as a beam decoder or a chat-completion
//! API would. Whether a candidate is right is decided downstream by
//! executing it, precisely as the paper's evaluation does.

use crate::error_ops::apply_random_error;
use crate::profile::{ModelKind, ModelProfile};
use cyclesql_benchgen::BenchmarkItem;
use cyclesql_sql::{
    parse, to_sql, AggFunc, BinOp, Expr, FuncArg, Literal, Query, SelectItem,
};
use cyclesql_storage::{execute, Database, ResultSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One translation candidate, as emitted by a model.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate SQL text (may be unparseable for LLM profiles).
    pub sql: String,
    /// Rank in the beam / completion list (0 = top).
    pub rank: usize,
    /// Model confidence score (monotonically decreasing in rank).
    pub score: f64,
}

/// Gold-side artifacts prepared once per item by an evaluation session:
/// the parsed gold AST and (when the gold executes) its result on the
/// item's database. Passing this into [`SimulatedModel::translate_prepared`]
/// lets the simulator skip re-parsing and re-executing the gold query.
#[derive(Debug, Clone)]
pub struct PreparedGold {
    /// The parsed gold query.
    pub ast: Arc<Query>,
    /// The gold result on the item's database; `None` if execution failed.
    pub result: Option<Arc<ResultSet>>,
}

/// A candidate paired with its parse artifact, so downstream consumers
/// (the cycle loop, metrics) never re-parse the SQL text.
#[derive(Debug, Clone)]
pub struct PreparedCandidate {
    /// The candidate SQL text (may be unparseable for LLM profiles).
    pub sql: String,
    /// The parsed candidate; `None` when the text does not parse.
    pub ast: Option<Arc<Query>>,
    /// Rank in the beam / completion list (0 = top).
    pub rank: usize,
    /// Model confidence score (monotonically decreasing in rank).
    pub score: f64,
}

impl PreparedCandidate {
    /// Drops the parse artifact, leaving the plain string candidate.
    pub fn into_candidate(self) -> Candidate {
        Candidate { sql: self.sql, rank: self.rank, score: self.score }
    }
}

/// A translation request.
#[derive(Debug, Clone, Copy)]
pub struct TranslationRequest<'a> {
    /// The benchmark item to translate.
    pub item: &'a BenchmarkItem,
    /// The database it targets.
    pub db: &'a Database,
    /// Number of candidates (beam size / completion count).
    pub k: usize,
    /// Perturbation severity of the benchmark variant in `[0, 1]`.
    pub severity: f64,
    /// Whether the item comes from the science benchmark (domain shift).
    pub science: bool,
}

/// A simulated end-to-end NL2SQL model.
#[derive(Debug, Clone)]
pub struct SimulatedModel {
    /// The behavioural profile.
    pub profile: ModelProfile,
}

impl SimulatedModel {
    /// Wraps a profile.
    pub fn new(profile: ModelProfile) -> Self {
        SimulatedModel { profile }
    }

    /// All eight baseline models.
    pub fn all() -> Vec<SimulatedModel> {
        ModelProfile::all().into_iter().map(SimulatedModel::new).collect()
    }

    /// Produces the ranked candidate list for an item. Deterministic per
    /// (model, item).
    pub fn translate(&self, req: &TranslationRequest<'_>) -> Vec<Candidate> {
        self.translate_prepared(req, None)
            .into_iter()
            .map(PreparedCandidate::into_candidate)
            .collect()
    }

    /// Like [`SimulatedModel::translate`], but reuses prepared gold
    /// artifacts and emits candidates with their parsed ASTs attached.
    ///
    /// The RNG draw sequence is identical to the string path — the gold
    /// parse and gold execution consume no randomness — so the candidate
    /// lists are bit-for-bit the same whether or not `gold` is supplied.
    pub fn translate_prepared(
        &self,
        req: &TranslationRequest<'_>,
        gold: Option<&PreparedGold>,
    ) -> Vec<PreparedCandidate> {
        let gold_ast: Arc<Query> = match gold {
            Some(g) => Arc::clone(&g.ast),
            None => match parse(&req.item.gold_sql) {
                Ok(q) => Arc::new(q),
                Err(_) => return Vec::new(),
            },
        };
        // The gold result is only needed to keep wrong candidates
        // execution-distinct; compute it lazily so a k=1 correct beam never
        // executes the gold at all (matching the string path's cost shape).
        let mut gold_result: Option<Option<Arc<ResultSet>>> =
            gold.map(|g| g.result.clone());
        let mut rng = StdRng::seed_from_u64(
            fxhash(self.profile.name) ^ fxhash(&req.item.id) ^ 0x5117,
        );

        // Effective top-1 correctness under perturbation / domain shift.
        let mut p1 = self.profile.top1_for(req.item.difficulty);
        p1 *= 1.0 - self.profile.perturbation_sensitivity * req.severity;
        if req.science {
            p1 *= self.profile.science_factor;
        }
        let p1 = p1.clamp(0.02, 0.98);

        // Where does the first correct candidate sit?
        let first_correct: Option<usize> = if rng.gen_bool(p1) {
            Some(0)
        } else if rng.gen_bool(self.profile.beam_recovery.clamp(0.0, 1.0)) {
            let mut rank = 1usize;
            while rank + 1 < req.k && rng.gen_bool(self.profile.rank_depth) {
                rank += 1;
            }
            Some(rank)
        } else {
            None
        };

        let mut candidates = Vec::with_capacity(req.k);
        for rank in 0..req.k {
            let (sql, ast) = if Some(rank) == first_correct {
                let style_p = if req.science {
                    self.profile.science_style_divergence
                } else {
                    self.profile.style_divergence
                };
                let styled = rng.gen_bool(style_p);
                if styled {
                    let q = restyle(&gold_ast, req.db, &mut rng);
                    (to_sql(&q), Some(Arc::new(q)))
                } else {
                    (to_sql(&gold_ast), Some(Arc::clone(&gold_ast)))
                }
            } else if self.profile.kind == ModelKind::Llm
                && rng.gen_bool(self.profile.invalid_rate)
            {
                // LLMs occasionally emit non-SQL garbage.
                let sql = format!("{} AND AND ???", req.item.gold_sql);
                let ast = parse(&sql).ok().map(Arc::new);
                (sql, ast)
            } else {
                let gr = gold_result
                    .get_or_insert_with(|| execute(req.db, &gold_ast).ok().map(Arc::new))
                    .clone();
                wrong_candidate(&gold_ast, gr.as_deref(), req.db, &mut rng)
            };
            candidates.push(PreparedCandidate {
                sql,
                ast,
                rank,
                score: 1.0 - rank as f64 * 0.07,
            });
        }
        candidates
    }

    /// Simulated wall-clock for one inference call (producing the whole
    /// candidate list — beam search and the `n` API parameter both amortize
    /// candidates into a single call).
    pub fn inference_latency_ms(&self) -> f64 {
        self.profile.latency_ms
    }
}

/// Builds an incorrect candidate: 1–2 error operators, retried until the
/// result is executable and (best-effort) execution-distinct from the gold.
///
/// The gold result is supplied by the caller (computed at most once per
/// translation) instead of being re-executed per wrong candidate.
fn wrong_candidate(
    gold: &Query,
    gold_result: Option<&ResultSet>,
    db: &Database,
    rng: &mut StdRng,
) -> (String, Option<Arc<Query>>) {
    for _attempt in 0..4 {
        let mut q = match apply_random_error(gold, db, rng) {
            Some(q) => q,
            None => break,
        };
        if rng.gen_bool(0.35) {
            if let Some(q2) = apply_random_error(&q, db, rng) {
                q = q2;
            }
        }
        let sql = to_sql(&q);
        let Ok(reparsed) = parse(&sql) else { continue };
        let Ok(result) = execute(db, &reparsed) else { continue };
        if let Some(gr) = gold_result {
            if result.bag_eq(gr) {
                // Accidentally equivalent — usually retry, occasionally let
                // it through (real model errors are sometimes benign).
                if rng.gen_bool(0.85) {
                    continue;
                }
            }
        }
        return (sql, Some(Arc::new(reparsed)));
    }
    // Fallback: a structurally-different but valid query (count over base).
    let base = gold.leading_select().from.base.clone();
    let sql = format!("SELECT count(*) FROM {}", base.name);
    let ast = parse(&sql).ok().map(Arc::new);
    (sql, ast)
}

/// Restyles a correct query without changing its semantics: breaks EM,
/// preserves EX (the LLM signature of low exact-match, high execution
/// accuracy).
fn restyle(gold: &Query, db: &Database, rng: &mut StdRng) -> Query {
    let mut q = gold.clone();
    let choice = rng.gen_range(0..3);
    match choice {
        0 => {
            // count(*) → count(<pk>): the paper's CHESS "ID-like projection"
            // signature (here EX-preserving because generated keys are
            // non-null).
            let base = q.leading_select().from.base.clone();
            let pk = db
                .schema
                .table(&base.name)
                .and_then(|t| t.primary_key_names().first().map(|s| s.to_string()));
            if let Some(pk) = pk {
                let core = q.leading_select_mut();
                for item in &mut core.projections {
                    if let SelectItem::Expr {
                        expr: Expr::Agg { func: AggFunc::Count, arg: arg @ FuncArg::Star, .. },
                        ..
                    } = item
                    {
                        *arg = FuncArg::Expr(Box::new(Expr::col(
                            cyclesql_sql::ColumnRef {
                                table: base.alias.clone().or_else(|| Some(base.name.clone())),
                                column: pk.clone(),
                            },
                        )));
                        return q;
                    }
                }
            }
            add_tautology(&mut q);
            q
        }
        1 => {
            // x = 'v'  →  x IN ('v').
            let core = q.leading_select_mut();
            if let Some(w) = &mut core.where_clause {
                if eq_to_in(w) {
                    return q;
                }
            }
            add_tautology(&mut q);
            q
        }
        _ => {
            add_tautology(&mut q);
            q
        }
    }
}

/// Appends a `1 = 1` tautology conjunct (semantics-preserving EM breaker).
fn add_tautology(q: &mut Query) {
    let core = q.leading_select_mut();
    let tautology = Expr::binary(
        BinOp::Eq,
        Expr::lit(Literal::Int(1)),
        Expr::lit(Literal::Int(1)),
    );
    core.where_clause = Some(match core.where_clause.take() {
        Some(w) => Expr::and(w, tautology),
        None => tautology,
    });
}

fn eq_to_in(e: &mut Expr) -> bool {
    match e {
        Expr::Binary { op: BinOp::Eq, left, right } => {
            if let (Expr::Column(_), Expr::Literal(lit)) = (&**left, &**right) {
                let lit = lit.clone();
                let col = std::mem::replace(&mut **left, Expr::lit(Literal::Null));
                *e = Expr::InList {
                    expr: Box::new(col),
                    list: vec![Expr::lit(lit)],
                    negated: false,
                };
                true
            } else {
                false
            }
        }
        Expr::Binary { left, right, .. } => eq_to_in(left) || eq_to_in(right),
        _ => false,
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
    use cyclesql_sql::exact_match;

    fn setup() -> (cyclesql_benchgen::BenchmarkSuite, SimulatedModel) {
        (
            build_spider_suite(Variant::Spider, SuiteConfig::default()),
            SimulatedModel::new(ModelProfile::resdsql_3b()),
        )
    }

    #[test]
    fn translation_is_deterministic() {
        let (suite, model) = setup();
        let item = &suite.dev[0];
        let req = TranslationRequest {
            item,
            db: suite.database(item),
            k: 8,
            severity: 0.0,
            science: false,
        };
        let a = model.translate(&req);
        let b = model.translate(&req);
        assert_eq!(
            a.iter().map(|c| &c.sql).collect::<Vec<_>>(),
            b.iter().map(|c| &c.sql).collect::<Vec<_>>()
        );
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn prepared_translation_matches_string_path() {
        // The prepared path must draw the same RNG sequence whether or not
        // gold artifacts are supplied, for every profile.
        let (suite, _) = setup();
        for model in SimulatedModel::all() {
            for item in suite.dev.iter().take(20) {
                let db = suite.database(item);
                let req = TranslationRequest { item, db, k: 8, severity: 0.0, science: false };
                let plain = model.translate(&req);
                let gold_ast = Arc::new(parse(&item.gold_sql).unwrap());
                let gold = PreparedGold {
                    ast: Arc::clone(&gold_ast),
                    result: execute(db, &gold_ast).ok().map(Arc::new),
                };
                let prepared = model.translate_prepared(&req, Some(&gold));
                assert_eq!(plain.len(), prepared.len());
                for (p, c) in plain.iter().zip(&prepared) {
                    assert_eq!(p.sql, c.sql, "{} {}", model.profile.name, item.id);
                    assert_eq!(p.rank, c.rank);
                    assert_eq!(p.score, c.score);
                    // The attached AST must agree with parsing the text.
                    assert_eq!(c.ast.is_some(), parse(&c.sql).is_ok());
                    if let Some(ast) = &c.ast {
                        assert_eq!(to_sql(ast), to_sql(&parse(&c.sql).unwrap()));
                    }
                }
            }
        }
    }

    #[test]
    fn scores_decrease_with_rank() {
        let (suite, model) = setup();
        let item = &suite.dev[0];
        let req = TranslationRequest {
            item,
            db: suite.database(item),
            k: 8,
            severity: 0.0,
            science: false,
        };
        let cands = model.translate(&req);
        for w in cands.windows(2) {
            assert!(w[0].score > w[1].score);
        }
    }

    #[test]
    fn top1_accuracy_tracks_profile() {
        // Over the dev split, measured top-1 EX should be within a few
        // points of the calibrated profile (law of large numbers on ~350
        // items).
        let (suite, model) = setup();
        let mut correct = 0usize;
        let mut total = 0usize;
        for item in &suite.dev {
            let db = suite.database(item);
            let gold = parse(&item.gold_sql).unwrap();
            let gold_result = execute(db, &gold).unwrap();
            let req = TranslationRequest { item, db, k: 1, severity: 0.0, science: false };
            let cands = model.translate(&req);
            total += 1;
            if let Ok(q) = parse(&cands[0].sql) {
                if let Ok(r) = execute(db, &q) {
                    if r.bag_eq(&gold_result) {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        // Dev-split difficulty mix weights the profile; expect 0.65–0.92.
        assert!((0.60..=0.95).contains(&acc), "top-1 accuracy {acc}");
    }

    #[test]
    fn beam_contains_more_correct_than_top1() {
        let (suite, model) = setup();
        let mut top1 = 0usize;
        let mut any = 0usize;
        for item in &suite.dev {
            let db = suite.database(item);
            let gold = parse(&item.gold_sql).unwrap();
            let gold_result = execute(db, &gold).unwrap();
            let req = TranslationRequest { item, db, k: 8, severity: 0.0, science: false };
            let cands = model.translate(&req);
            let correct_at = |c: &Candidate| {
                parse(&c.sql)
                    .ok()
                    .and_then(|q| execute(db, &q).ok())
                    .is_some_and(|r| r.bag_eq(&gold_result))
            };
            if correct_at(&cands[0]) {
                top1 += 1;
            }
            if cands.iter().any(correct_at) {
                any += 1;
            }
        }
        assert!(any > top1, "beam must recover extra correct answers ({any} vs {top1})");
    }

    #[test]
    fn severity_degrades_accuracy() {
        let (suite, model) = setup();
        let mut base = 0usize;
        let mut perturbed = 0usize;
        for item in &suite.dev {
            let db = suite.database(item);
            let gold = parse(&item.gold_sql).unwrap();
            let gold_result = execute(db, &gold).unwrap();
            for (severity, counter) in [(0.0, &mut base), (0.55, &mut perturbed)] {
                let req = TranslationRequest { item, db, k: 1, severity, science: false };
                let cands = model.translate(&req);
                if let Ok(q) = parse(&cands[0].sql) {
                    if let Ok(r) = execute(db, &q) {
                        if r.bag_eq(&gold_result) {
                            *counter += 1;
                        }
                    }
                }
            }
        }
        assert!(perturbed < base, "severity should hurt: {perturbed} vs {base}");
    }

    #[test]
    fn llm_restyles_break_em_not_ex() {
        let (suite, _) = setup();
        let model = SimulatedModel::new(ModelProfile::gpt35());
        let mut styled = 0usize;
        let mut checked = 0usize;
        for item in &suite.dev {
            let db = suite.database(item);
            let gold = parse(&item.gold_sql).unwrap();
            let gold_result = execute(db, &gold).unwrap();
            let req = TranslationRequest { item, db, k: 1, severity: 0.0, science: false };
            let cands = model.translate(&req);
            let Ok(q) = parse(&cands[0].sql) else { continue };
            let Ok(r) = execute(db, &q) else { continue };
            if r.bag_eq(&gold_result) {
                checked += 1;
                if !exact_match(&q, &gold) {
                    styled += 1;
                }
            }
        }
        assert!(checked > 30, "only {checked} correct top-1 candidates");
        let ratio = styled as f64 / checked as f64;
        assert!(
            (0.2..=0.6).contains(&ratio),
            "GPT-3.5 style divergence should be heavy: {ratio}"
        );
    }

    #[test]
    fn restyle_preserves_execution() {
        let (suite, _) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        for item in suite.dev.iter().take(60) {
            let db = suite.database(item);
            let gold = parse(&item.gold_sql).unwrap();
            let gold_result = execute(db, &gold).unwrap();
            let styled = restyle(&gold, db, &mut rng);
            let r = execute(db, &styled)
                .unwrap_or_else(|e| panic!("restyle broke {}: {e}", item.id));
            assert!(
                r.bag_eq(&gold_result),
                "restyle changed semantics for {}: {}",
                item.id,
                to_sql(&styled)
            );
        }
    }

    #[test]
    fn all_models_translate_without_panic() {
        let (suite, _) = setup();
        let item = &suite.dev[3];
        for model in SimulatedModel::all() {
            let req = TranslationRequest {
                item,
                db: suite.database(item),
                k: model.profile.default_k,
                severity: 0.0,
                science: false,
            };
            let cands = model.translate(&req);
            assert_eq!(cands.len(), model.profile.default_k, "{}", model.profile.name);
        }
    }
}
