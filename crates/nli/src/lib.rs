//! # cyclesql-nli
//!
//! Stage 4 of the CycleSQL loop: translation verification as natural
//! language inference. Provides entailment feature extraction over
//! explanation premises, the focal loss of the paper's training setup, a
//! from-scratch linear NLI classifier with a deterministic SGD trainer, and
//! the Table III strawman verifiers (prompted-LLM stand-in, pre-built NLI
//! stand-in).
//!
//! ```
//! use cyclesql_nli::{extract_features, NliModel, TrainConfig, TrainingExample, FEATURE_DIM};
//! use cyclesql_explain::ExplanationFacets;
//!
//! // A count-style premise vs a count-style question.
//! let facets = ExplanationFacets {
//!     agg_funcs: vec![(cyclesql_sql::AggFunc::Count, None)],
//!     num_columns: 1,
//!     num_rows: 1,
//!     result_values: vec!["4".into()],
//!     ..Default::default()
//! };
//! let features = extract_features(
//!     "How many flights are there?",
//!     "there are 4 flights in total",
//!     &facets,
//! );
//! assert_eq!(features.len(), FEATURE_DIM);
//!
//! // Train a tiny verifier on two examples and score.
//! let examples = vec![
//!     TrainingExample { features: features.clone(), entailment: true },
//!     TrainingExample { features: vec![-1.0; FEATURE_DIM], entailment: false },
//! ];
//! let (model, _trace) = NliModel::train(&examples, TrainConfig::default());
//! assert!(model.score(&features).is_finite());
//! ```

#![warn(missing_docs)]

pub mod features;
pub mod loss;
pub mod mlp;
pub mod model;
pub mod verifier;

pub use features::{extract_features, question_intent, QuestionIntent, FEATURE_DIM};
pub use loss::{sigmoid, FocalLoss};
pub use mlp::{MlpConfig, MlpNli, MlpVerifier};
pub use model::{NliModel, TrainConfig, TrainingExample};
pub use verifier::{
    AlwaysAcceptVerifier, LlmStrawmanVerifier, MaskedNliVerifier, PrebuiltNliVerifier,
    TrainedVerifier, Verdict, Verifier, VerifyInput,
};
