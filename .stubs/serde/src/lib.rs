//! Minimal std-only stand-in for serde, sufficient for local offline builds.
//! The data model is a JSON value tree; derives come from the sibling
//! `serde_derive` stub.

pub use serde_derive::{Deserialize, Serialize};

pub mod __value {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(Number),
        String(String),
        Array(Vec<Value>),
        Object(Map<String, Value>),
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        I(i64),
        U(u64),
        F(f64),
    }

    impl Number {
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Number::I(n) => Some(n),
                Number::U(n) => i64::try_from(n).ok(),
                Number::F(f) if f.fract() == 0.0 && f.abs() < 9.22e18 => Some(f as i64),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Number::I(n) => u64::try_from(n).ok(),
                Number::U(n) => Some(n),
                Number::F(f) if f.fract() == 0.0 && f >= 0.0 && f < 1.9e19 => Some(f as u64),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Number::I(n) => Some(n as f64),
                Number::U(n) => Some(n as f64),
                Number::F(f) => Some(f),
            }
        }
    }

    /// Insertion-ordered string-keyed map (mirrors serde_json's Map API
    /// surface that the workspace uses).
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Map<K, V> {
        entries: Vec<(K, V)>,
    }

    impl<V> Map<String, V> {
        pub fn new() -> Self {
            Map {
                entries: Vec::new(),
            }
        }
        pub fn insert(&mut self, k: String, v: V) -> Option<V> {
            if let Some(slot) = self.entries.iter_mut().find(|(ek, _)| *ek == k) {
                return Some(std::mem::replace(&mut slot.1, v));
            }
            self.entries.push((k, v));
            None
        }
        pub fn get(&self, k: &str) -> Option<&V> {
            self.entries.iter().find(|(ek, _)| ek == k).map(|(_, v)| v)
        }
        pub fn iter(&self) -> impl Iterator<Item = (&String, &V)> {
            self.entries.iter().map(|(k, v)| (k, v))
        }
        pub fn len(&self) -> usize {
            self.entries.len()
        }
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }
    }

    impl<V> FromIterator<(String, V)> for Map<String, V> {
        fn from_iter<T: IntoIterator<Item = (String, V)>>(iter: T) -> Self {
            let mut m = Map::new();
            for (k, v) in iter {
                m.insert(k, v);
            }
            m
        }
    }

    impl<V> IntoIterator for Map<String, V> {
        type Item = (String, V);
        type IntoIter = std::vec::IntoIter<(String, V)>;
        fn into_iter(self) -> Self::IntoIter {
            self.entries.into_iter()
        }
    }

    impl Value {
        pub fn as_object(&self) -> Option<&Map<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => n.as_f64(),
                _ => None,
            }
        }
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Number(n) => n.as_i64(),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) => n.as_u64(),
                _ => None,
            }
        }
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object().and_then(|m| m.get(key))
        }
    }
}

use __value::{Map, Number, Value};

pub trait Serialize {
    fn __jv(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn __from_jv(v: &Value) -> Result<Self, String>;
}

// ---- Serialize impls -------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __jv(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
    )*}
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __jv(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
    )*}
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn __jv(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            Value::Null
        }
    }
}
impl Serialize for f32 {
    fn __jv(&self) -> Value {
        (*self as f64).__jv()
    }
}
impl Serialize for bool {
    fn __jv(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn __jv(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn __jv(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn __jv(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __jv(&self) -> Value {
        (**self).__jv()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn __jv(&self) -> Value {
        (**self).__jv()
    }
}
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn __jv(&self) -> Value {
        (**self).__jv()
    }
}
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn __jv(&self) -> Value {
        (**self).__jv()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __jv(&self) -> Value {
        match self {
            Some(v) => v.__jv(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn __jv(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__jv).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn __jv(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__jv).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn __jv(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__jv).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn __jv(&self) -> Value {
                Value::Array(vec![$(self.$n.__jv()),+])
            }
        }
    )*}
}
ser_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn __jv(&self) -> Value {
        let mut m = Map::new();
        // Deterministic output: sort keys like a canonicalizing serializer.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str());
        for (k, v) in entries {
            m.insert(k.clone(), v.__jv());
        }
        Value::Object(m)
    }
}
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn __jv(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.__jv());
        }
        Value::Object(m)
    }
}
impl<V: Serialize> Serialize for std::collections::BTreeMap<&'static str, V> {
    fn __jv(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.__jv());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn __jv(&self) -> Value {
        self.clone()
    }
}
impl<V: Serialize> Serialize for Map<String, V> {
    fn __jv(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self.iter() {
            m.insert(k.clone(), v.__jv());
        }
        Value::Object(m)
    }
}

// ---- Deserialize impls -----------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn __from_jv(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| format!("number out of range for {}", stringify!($t))),
                    _ => Err(format!("expected integer, got {v:?}")),
                }
            }
        }
    )*}
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn __from_jv(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| format!("number out of range for {}", stringify!($t))),
                    _ => Err(format!("expected integer, got {v:?}")),
                }
            }
        }
    )*}
}
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| "bad number".to_string()),
            Value::Null => Ok(f64::NAN),
            _ => Err(format!("expected number, got {v:?}")),
        }
    }
}
impl Deserialize for f32 {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        f64::__from_jv(v).map(|f| f as f32)
    }
}
impl Deserialize for bool {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}
impl Deserialize for String {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}
impl Deserialize for char {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        let s = String::__from_jv(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err("expected single-char string".to_string()),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::__from_jv(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::__from_jv).collect(),
            _ => Err(format!("expected array, got {v:?}")),
        }
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        T::__from_jv(v).map(Box::new)
    }
}
impl Deserialize for std::sync::Arc<str> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        String::__from_jv(v).map(|s| s.into())
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        T::__from_jv(v).map(std::sync::Arc::new)
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn __from_jv(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = stringify!($n);
                                $t::__from_jv(it.next().ok_or("tuple too short")?)?
                            },
                        )+))
                    }
                    _ => Err(format!("expected array, got {v:?}")),
                }
            }
        }
    )*}
}
de_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| V::__from_jv(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(format!("expected object, got {v:?}")),
        }
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| V::__from_jv(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(format!("expected object, got {v:?}")),
        }
    }
}

impl Deserialize for Value {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
impl<V: Deserialize> Deserialize for Map<String, V> {
    fn __from_jv(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| V::__from_jv(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(format!("expected object, got {v:?}")),
        }
    }
}
