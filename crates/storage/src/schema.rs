//! Schemas: columns, tables, keys, and whole-database catalogs.

use serde::{Deserialize, Serialize};

#[allow(missing_docs)] // variant names are self-describing
/// Declared column type. The engine is dynamically typed at runtime; the
/// declared type drives data generation and NL rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, lower-case.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Human-friendly phrase for NL generation (e.g. `flno` → "flight number").
    pub nl_name: String,
}

impl ColumnDef {
    /// A column whose NL name equals its SQL name.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        let name = name.into().to_ascii_lowercase();
        ColumnDef { nl_name: name.replace('_', " "), name, dtype }
    }

    /// A column with an explicit NL phrase.
    pub fn with_nl(name: impl Into<String>, dtype: DataType, nl: impl Into<String>) -> Self {
        ColumnDef { name: name.into().to_ascii_lowercase(), dtype, nl_name: nl.into() }
    }
}

#[allow(missing_docs)] // field names are self-describing
/// A foreign-key edge from `(from_table, from_column)` to
/// `(to_table, to_column)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, lower-case.
    pub name: String,
    /// Column definitions, in order.
    pub columns: Vec<ColumnDef>,
    /// Indices of primary-key columns.
    pub primary_key: Vec<usize>,
    /// Human-friendly phrase for the table ("flight", "high schooler").
    pub nl_name: String,
}

impl TableSchema {
    /// Creates a table schema; the first column is the primary key by default.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        let name = name.into().to_ascii_lowercase();
        TableSchema {
            nl_name: name.replace('_', " "),
            name,
            primary_key: if columns.is_empty() { vec![] } else { vec![0] },
            columns,
        }
    }

    /// Overrides the primary key columns (by index).
    pub fn with_primary_key(mut self, pk: Vec<usize>) -> Self {
        self.primary_key = pk;
        self
    }

    /// Overrides the NL name.
    pub fn with_nl(mut self, nl: impl Into<String>) -> Self {
        self.nl_name = nl.into();
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Names of the primary-key columns.
    pub fn primary_key_names(&self) -> Vec<&str> {
        self.primary_key.iter().map(|&i| self.columns[i].name.as_str()).collect()
    }
}

/// Schema of a whole database: tables plus foreign keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSchema {
    /// Database identifier (e.g. `world_1`).
    pub name: String,
    /// Table schemas.
    pub tables: Vec<TableSchema>,
    /// Foreign-key edges.
    pub foreign_keys: Vec<ForeignKey>,
}

impl DatabaseSchema {
    /// Creates an empty database schema.
    pub fn new(name: impl Into<String>) -> Self {
        DatabaseSchema { name: name.into(), tables: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Adds a table.
    pub fn add_table(&mut self, table: TableSchema) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a foreign key.
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
    ) -> &mut Self {
        self.foreign_keys.push(ForeignKey {
            from_table: from_table.to_ascii_lowercase(),
            from_column: from_column.to_ascii_lowercase(),
            to_table: to_table.to_ascii_lowercase(),
            to_column: to_column.to_ascii_lowercase(),
        });
        self
    }

    /// Looks up a table schema by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        let lower = name.to_ascii_lowercase();
        self.tables.iter().find(|t| t.name == lower)
    }

    /// Foreign keys leaving a table.
    pub fn foreign_keys_from(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys.iter().filter(|fk| fk.from_table == table).collect()
    }

    /// The foreign key (in either direction) connecting two tables, if any.
    pub fn fk_between(&self, a: &str, b: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table == a && fk.to_table == b) || (fk.from_table == b && fk.to_table == a)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight_schema() -> DatabaseSchema {
        let mut db = DatabaseSchema::new("flight_1");
        db.add_table(TableSchema::new(
            "aircraft",
            vec![
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("distance", DataType::Int),
            ],
        ));
        db.add_table(TableSchema::new(
            "flight",
            vec![
                ColumnDef::new("flno", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("origin", DataType::Text),
                ColumnDef::new("destination", DataType::Text),
            ],
        ));
        db.add_foreign_key("flight", "aid", "aircraft", "aid");
        db
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let db = flight_schema();
        let t = db.table("Flight").unwrap();
        assert_eq!(t.column_index("FLNO"), Some(0));
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn default_primary_key_is_first_column() {
        let db = flight_schema();
        assert_eq!(db.table("aircraft").unwrap().primary_key_names(), vec!["aid"]);
    }

    #[test]
    fn fk_between_is_direction_insensitive() {
        let db = flight_schema();
        assert!(db.fk_between("flight", "aircraft").is_some());
        assert!(db.fk_between("aircraft", "flight").is_some());
        assert!(db.fk_between("aircraft", "aircraft").is_none());
    }

    #[test]
    fn nl_names_default_from_sql_names() {
        let c = ColumnDef::new("country_code", DataType::Text);
        assert_eq!(c.nl_name, "country code");
        let t = TableSchema::new("singer_in_concert", vec![]);
        assert_eq!(t.nl_name, "singer in concert");
    }
}
