/root/repo/target/release/deps/trace_report-c0fe3cccbb48f33b.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/release/deps/trace_report-c0fe3cccbb48f33b: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
