/root/repo/target/debug/deps/cyclesql_obs-f864d4f5108b60e1.d: crates/obs/src/lib.rs crates/obs/src/sample.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_obs-f864d4f5108b60e1.rmeta: crates/obs/src/lib.rs crates/obs/src/sample.rs crates/obs/src/sink.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/sample.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
