/root/repo/target/release/deps/cyclesql_benchgen-82dba8bdd8972500.d: crates/benchgen/src/lib.rs crates/benchgen/src/datagen.rs crates/benchgen/src/domains.rs crates/benchgen/src/suite.rs crates/benchgen/src/templates.rs crates/benchgen/src/variants.rs

/root/repo/target/release/deps/cyclesql_benchgen-82dba8bdd8972500: crates/benchgen/src/lib.rs crates/benchgen/src/datagen.rs crates/benchgen/src/domains.rs crates/benchgen/src/suite.rs crates/benchgen/src/templates.rs crates/benchgen/src/variants.rs

crates/benchgen/src/lib.rs:
crates/benchgen/src/datagen.rs:
crates/benchgen/src/domains.rs:
crates/benchgen/src/suite.rs:
crates/benchgen/src/templates.rs:
crates/benchgen/src/variants.rs:
