//! The resolved intermediate representation produced by [`crate::compile`].
//!
//! A [`CompiledQuery`] carries everything the run loop needs with all
//! per-row interpretation work hoisted to compile time:
//!
//! - every column reference is a pre-bound working-set **slot** index
//!   ([`CExpr::Slot`]) — no name resolution after compile;
//! - every uncorrelated subquery is a **prologue step** ([`SubPlan`])
//!   executed exactly once per run: `IN (SELECT …)` becomes a prebuilt
//!   [`InProbe`] hash probe, `EXISTS`/scalar subqueries become constants;
//! - table names are **interned** (`tables`), so lineage travels as
//!   `(table-id, row)` pairs internally and is materialized to
//!   [`crate::SourceRef`]s only at the output boundary.
//!
//! Compiling binds *names* against a database schema, not data: the same
//! `CompiledQuery` runs against any database with that schema (the TS
//! metric runs one plan across several data variants), which is why the
//! subquery prologue executes per *run*, not per compile.

use crate::value::{KeyValue, Value};
use cyclesql_sql::{AggFunc, BinOp, JoinType, SetOp, SortOrder};
use std::collections::HashSet;

/// Statistics from one compiled run, for tests and benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of hoisted subquery plans executed. Each subquery site runs
    /// exactly once per run regardless of the outer row count.
    pub subquery_runs: usize,
    /// Number of CTE bodies materialized. Each `WITH` definition runs
    /// exactly once per run, referenced or not.
    pub cte_runs: usize,
}

/// A prebuilt hash-probe over the values of a subquery result (or constant
/// `IN` list), replicating [`Value::sql_eq`] membership semantics in O(1)
/// per lookup.
///
/// `sql_eq` is type-directed and not an equivalence relation (`Str`-vs-`Str`
/// compares text even when both parse numerically, while every other
/// non-NULL pair compares through `as_f64`), so a single hash set cannot
/// model it. The probe instead keys text verbatim plus three numeric-bits
/// sets partitioned by the *source* type, and each needle type consults
/// exactly the sets `sql_eq` would compare it against.
#[derive(Debug, Default, Clone)]
pub struct InProbe {
    /// Text values, matched verbatim against text needles.
    strs: HashSet<String>,
    /// Presence of `false` / `true` boolean values.
    bools: [bool; 2],
    /// `f64` bits of Int/Float values.
    num_numeric: HashSet<u64>,
    /// `f64` bits of Bool values (0.0 / 1.0).
    num_bool: HashSet<u64>,
    /// `f64` bits of Str values that parse numerically.
    num_str: HashSet<u64>,
}

/// `sql_eq` compares numeric views with `f64 ==`, so `-0.0` matches `0.0`;
/// normalize to one key. NaN never equals anything — callers exclude it.
fn eq_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

impl InProbe {
    /// Adds one haystack value. NULLs are skipped: they never match.
    pub fn insert(&mut self, v: &Value) {
        match v {
            Value::Null => {}
            Value::Str(s) => {
                if let Some(x) = v.as_f64() {
                    if !x.is_nan() {
                        self.num_str.insert(eq_bits(x));
                    }
                }
                self.strs.insert(s.clone());
            }
            Value::Bool(b) => {
                self.bools[*b as usize] = true;
                self.num_bool.insert(eq_bits(if *b { 1.0 } else { 0.0 }));
            }
            Value::Int(_) | Value::Float(_) => {
                if let Some(x) = v.as_f64() {
                    if !x.is_nan() {
                        self.num_numeric.insert(eq_bits(x));
                    }
                }
            }
        }
    }

    /// Whether any inserted value satisfies `needle.sql_eq(value) == Some(true)`.
    pub fn contains(&self, needle: &Value) -> bool {
        let num_match = |x: f64, sets: &[&HashSet<u64>]| -> bool {
            if x.is_nan() {
                return false;
            }
            let bits = eq_bits(x);
            sets.iter().any(|s| s.contains(&bits))
        };
        match needle {
            Value::Null => false,
            Value::Str(s) => {
                // Str-vs-Str is textual; Str-vs-(Int|Float|Bool) is numeric.
                self.strs.contains(s)
                    || needle
                        .as_f64()
                        .is_some_and(|x| num_match(x, &[&self.num_numeric, &self.num_bool]))
            }
            Value::Bool(b) => {
                // Bool-vs-Bool is boolean; Bool-vs-(Int|Float|Str) is numeric.
                self.bools[*b as usize]
                    || num_match(
                        if *b { 1.0 } else { 0.0 },
                        &[&self.num_numeric, &self.num_str],
                    )
            }
            Value::Int(_) | Value::Float(_) => needle
                .as_f64()
                .is_some_and(|x| num_match(x, &[&self.num_numeric, &self.num_bool, &self.num_str])),
        }
    }
}

/// An interned source-tuple reference: `(table-id, row-index)`. Sixteen
/// bytes, `Copy`, hashable — lineage sets and dedup work on these instead
/// of cloned table-name strings.
pub(crate) type SrcId = (u32, usize);

/// A fully resolved expression. Column references are working-set slots;
/// subquery sites point into the prologue table ([`CompiledQuery::subs`]).
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    /// A working-set column, pre-bound to its slot index.
    Slot(usize),
    /// A literal constant.
    Const(Value),
    /// Binary operator.
    Binary {
        op: BinOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
    /// Logical negation (NULL-propagating).
    Not(Box<CExpr>),
    /// Aggregate call; `arg: None` is `COUNT(*)`.
    Agg {
        func: AggFunc,
        distinct: bool,
        arg: Option<Box<CExpr>>,
    },
    /// `expr [NOT] IN (SELECT …)` — membership via the prologue probe.
    InProbeRef {
        expr: Box<CExpr>,
        sub: usize,
        negated: bool,
    },
    /// `EXISTS (…)` / scalar subquery — a prologue-computed constant.
    SubConst { sub: usize },
    /// `expr [NOT] IN (const, …)` with the probe prebuilt at compile time.
    InConstList {
        expr: Box<CExpr>,
        probe: InProbe,
        negated: bool,
    },
    /// `expr [NOT] IN (…)` with at least one non-constant element.
    InList {
        expr: Box<CExpr>,
        list: Vec<CExpr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<CExpr>,
        low: Box<CExpr>,
        high: Box<CExpr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<CExpr>,
        pattern: String,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<CExpr>, negated: bool },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`. Branches evaluate
    /// lazily: the operand (if any) once per row, each WHEN only until the
    /// first match, the matching THEN only, and ELSE only when nothing
    /// matched. A missing ELSE yields NULL.
    Case {
        operand: Option<Box<CExpr>>,
        branches: Vec<(CExpr, CExpr)>,
        else_: Option<Box<CExpr>>,
    },
}

/// One projection item, resolved.
#[derive(Debug, Clone)]
pub(crate) enum CProj {
    /// `*` / `t.*`: copy these working-set slots through.
    Slots(Vec<usize>),
    /// A computed expression.
    Expr(CExpr),
}

/// Join strategy, decided at compile time from the ON shape.
#[derive(Debug, Clone)]
pub(crate) enum JoinStrategy {
    /// Single-equality ON: build a hash index over the right table's key
    /// column and probe with the left working-set slot.
    Hash { left_slot: usize, right_col: usize },
    /// General nested loop with an optional residual predicate.
    Loop { on: Option<CExpr> },
}

/// One compiled join step.
#[derive(Debug, Clone)]
pub(crate) struct CJoin {
    /// Interned id of the joined table (a schema table or a CTE).
    pub table: u32,
    /// Join flavor; [`JoinType::pads`] drives NULL-padding of unmatched
    /// left rows (LEFT/FULL) and unmatched right rows (RIGHT/FULL).
    pub join_type: JoinType,
    /// Number of columns the joined table contributes (for pad rows).
    pub right_width: usize,
    /// Hash or nested-loop execution.
    pub strategy: JoinStrategy,
    /// Display form of the ON condition, for plan rendering.
    pub on_display: Option<String>,
}

/// One compiled SELECT core.
#[derive(Debug, Clone)]
pub(crate) struct CCore {
    /// Interned id of the base table.
    pub base: u32,
    /// Join steps, in FROM order.
    pub joins: Vec<CJoin>,
    /// Compiled WHERE predicate.
    pub filter: Option<CExpr>,
    /// Display form of the WHERE predicate, for plan rendering.
    pub filter_display: Option<String>,
    /// Compiled GROUP BY expressions.
    pub group_by: Vec<CExpr>,
    /// Compiled HAVING predicate.
    pub having: Option<CExpr>,
    /// Whether execution is grouped (explicit GROUP BY, or aggregates in
    /// the projection / HAVING / ORDER BY).
    pub grouped: bool,
    /// Resolved projections.
    pub projections: Vec<CProj>,
    /// Output column display names, precomputed once at compile time and
    /// shared into each run's result without cloning the strings.
    pub columns: std::sync::Arc<[String]>,
    /// Bare (unqualified, lower-case) output column names — the schema a
    /// CTE materialized from this core exposes to the queries that scan it.
    pub bare_columns: Vec<String>,
    /// Compiled ORDER BY key expressions (threaded down from the query so
    /// each set-op branch resolves them in its own environment).
    pub order_exprs: Vec<CExpr>,
    /// SELECT DISTINCT.
    pub distinct: bool,
}

/// A compiled query body: a core or a set-operation tree.
#[derive(Debug, Clone)]
pub(crate) enum CBody {
    /// A single SELECT core.
    Select(CCore),
    /// A set operation over two bodies.
    SetOp {
        op: SetOp,
        left: Box<CBody>,
        right: Box<CBody>,
    },
}

impl CBody {
    /// Output arity (set-op output takes the left branch's columns).
    pub(crate) fn width(&self) -> usize {
        match self {
            CBody::Select(core) => core.columns.len(),
            CBody::SetOp { left, .. } => left.width(),
        }
    }

    /// The left-most core — the one whose columns name the output.
    pub(crate) fn first_core(&self) -> &CCore {
        match self {
            CBody::Select(core) => core,
            CBody::SetOp { left, .. } => left.first_core(),
        }
    }
}

/// One compiled `WITH` definition: a full subplan plus the bare column
/// names its materialized table exposes. Each CTE materializes exactly
/// once per run, before the subquery prologue, in declaration order.
#[derive(Debug, Clone)]
pub(crate) struct CtePlan {
    /// Declared CTE name (verbatim); shadows schema tables and any
    /// same-named CTE from an enclosing scope.
    pub name: String,
    /// The compiled body (which may carry its own nested CTEs).
    pub plan: CompiledQuery,
    /// Bare output column names, the materialized table's schema.
    pub columns: Vec<String>,
}

/// What a hoisted subquery site needs at run time.
#[derive(Debug, Clone)]
pub(crate) enum SubKind {
    /// `IN (SELECT …)`: build an [`InProbe`] over the first result column.
    InSet,
    /// `EXISTS (…)`: a boolean constant (`negated` folded in).
    Exists { negated: bool },
    /// Scalar subquery: first row/column or NULL.
    Scalar,
}

/// One hoisted uncorrelated subquery: a compiled plan plus how its result
/// is consumed. Executed exactly once per run, in the prologue.
#[derive(Debug, Clone)]
pub(crate) struct SubPlan {
    pub kind: SubKind,
    pub plan: CompiledQuery,
}

/// The result of one prologue step, ready for O(1) per-row consumption.
#[derive(Debug, Clone)]
pub(crate) enum SubResult {
    /// Membership probe for `IN (SELECT …)`.
    Probe(InProbe),
    /// Precomputed constant for `EXISTS` / scalar subqueries.
    Const(Value),
}

/// A query compiled against a database schema: run it with
/// [`CompiledQuery::run`] (any database with the same schema works — the
/// compile binds names, not data).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Interned table names; lineage ids index into this.
    pub(crate) tables: Vec<String>,
    /// `WITH` definitions, materialized once per run (in order, before
    /// the subquery prologue); later bodies may scan earlier ones.
    pub(crate) ctes: Vec<CtePlan>,
    /// Hoisted uncorrelated subqueries, executed once per run.
    pub(crate) subs: Vec<SubPlan>,
    /// The compiled body.
    pub(crate) body: CBody,
    /// ORDER BY directions (key expressions live in each core).
    pub(crate) order_dirs: Vec<SortOrder>,
    /// LIMIT, if any.
    pub(crate) limit: Option<u64>,
}

/// Builds the per-row grouping key used by GROUP BY / DISTINCT / set ops.
pub(crate) fn row_key(values: &[Value]) -> Vec<KeyValue> {
    values.iter().map(Value::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Int(0),
            Value::Int(1),
            Value::Int(2),
            Value::Int(-3),
            Value::Int(80000),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(1.0),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Bool(false),
            Value::Str("2".into()),
            Value::Str("2.0".into()),
            Value::Str("2.5".into()),
            Value::Str("80000".into()),
            Value::Str("abc".into()),
            Value::Str("".into()),
            Value::Str("true".into()),
            Value::Str("1".into()),
            Value::Str("0".into()),
            Value::Str("-0".into()),
        ]
    }

    #[test]
    fn probe_singleton_matches_sql_eq_exactly() {
        // The probe over {b} must answer exactly `a.sql_eq(b) == Some(true)`
        // for every needle/haystack pair — including the non-transitive
        // corners (Str("2") ≠ Str("2.0") but both == Int(2)).
        let samples = sample_values();
        for hay in &samples {
            let mut probe = InProbe::default();
            probe.insert(hay);
            for needle in &samples {
                assert_eq!(
                    probe.contains(needle),
                    needle.sql_eq(hay) == Some(true),
                    "probe({hay:?}).contains({needle:?})"
                );
            }
        }
    }

    #[test]
    fn probe_over_set_is_any_of_members() {
        let samples = sample_values();
        // Insert several haystack values at once; containment must equal the
        // disjunction of pairwise sql_eq.
        let hay = &samples[..];
        let mut probe = InProbe::default();
        for h in hay {
            probe.insert(h);
        }
        for needle in &samples {
            let expect = hay.iter().any(|h| needle.sql_eq(h) == Some(true));
            assert_eq!(probe.contains(needle), expect, "needle {needle:?}");
        }
    }

    #[test]
    fn null_needle_never_matches() {
        let mut probe = InProbe::default();
        probe.insert(&Value::Null);
        probe.insert(&Value::Int(1));
        assert!(!probe.contains(&Value::Null));
    }

    #[test]
    fn negative_zero_matches_zero_under_sql_eq() {
        let mut probe = InProbe::default();
        probe.insert(&Value::Float(-0.0));
        assert!(probe.contains(&Value::Int(0)));
        assert!(probe.contains(&Value::Float(0.0)));
    }
}
