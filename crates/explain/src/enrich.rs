//! Semantics enrichment (Section IV-B): overlays operation-level semantics
//! from the translated SQL query onto the data-level provenance table.
//!
//! Each [`QueryUnit`] of the original query is attached to the provenance
//! element it "contributes" to: a specific provenance column, the whole
//! table (global semantics, e.g. `count(*)` or a star projection), or the
//! result itself (`LIMIT`, set operators).

use cyclesql_provenance::ProvenanceTable;
use cyclesql_sql::{decompose, ClauseKind, Query, QueryUnit, UnitSemantics};

/// Where an annotation lands in the provenance table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotationTarget {
    /// A specific provenance column (by index).
    Column(usize),
    /// The whole provenance table (global semantics).
    Table,
    /// The query result itself (ordering, limits, set operations).
    Result,
}

/// One semantics annotation: a query unit anchored to a provenance element.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The query unit carrying the semantics.
    pub unit: QueryUnit,
    /// Where it is anchored.
    pub target: AnnotationTarget,
}

/// The enriched provenance: data plus anchored operation-level semantics.
#[derive(Debug, Clone)]
pub struct EnrichedProvenance {
    /// The underlying provenance table (empty for empty-result queries).
    pub table: ProvenanceTable,
    /// Anchored annotations, in query-clause order.
    pub annotations: Vec<Annotation>,
}

impl EnrichedProvenance {
    /// Annotations anchored to a given column.
    pub fn column_annotations(&self, col: usize) -> Vec<&Annotation> {
        self.annotations
            .iter()
            .filter(|a| a.target == AnnotationTarget::Column(col))
            .collect()
    }

    /// Annotations anchored at table level.
    pub fn table_annotations(&self) -> Vec<&Annotation> {
        self.annotations.iter().filter(|a| a.target == AnnotationTarget::Table).collect()
    }

    /// Annotations anchored at result level.
    pub fn result_annotations(&self) -> Vec<&Annotation> {
        self.annotations.iter().filter(|a| a.target == AnnotationTarget::Result).collect()
    }

    /// Invariant check used by tests: every annotation from the query landed
    /// somewhere (no unit is silently dropped during enrichment).
    pub fn is_total_for(&self, query: &Query) -> bool {
        self.annotations.len() == decompose(query).len()
    }
}

/// Enriches the provenance table with the semantics of `query`.
///
/// Every decomposed query unit is anchored: to its column when the unit's
/// primary column appears in the provenance, to the table when it carries
/// global semantics (aggregates, star projections, subquery predicates whose
/// column is absent), and to the result for ordering/limit/set operations.
pub fn enrich(query: &Query, table: &ProvenanceTable) -> EnrichedProvenance {
    let units = decompose(query);
    let annotations = units
        .into_iter()
        .map(|unit| {
            let target = anchor(&unit, table);
            Annotation { unit, target }
        })
        .collect();
    EnrichedProvenance { table: table.clone(), annotations }
}

fn anchor(unit: &QueryUnit, table: &ProvenanceTable) -> AnnotationTarget {
    let col_target = |c: &cyclesql_sql::ColumnRef| -> AnnotationTarget {
        // Provenance columns carry *real* table names while units may carry
        // aliases; `column_index` falls back to bare-name matching.
        match table.column_index(c.table.as_deref(), &c.column) {
            Some(i) => AnnotationTarget::Column(i),
            None => AnnotationTarget::Table,
        }
    };
    match &unit.semantics {
        UnitSemantics::Projection { column } => col_target(column),
        UnitSemantics::ProjectAll { .. } => AnnotationTarget::Table,
        UnitSemantics::Aggregate { column, .. } => match column {
            // Aggregation is global semantics over the (grouped) table, per
            // the paper's Figure 5 where `count(*)` annotates the table.
            None => AnnotationTarget::Table,
            Some(c) => match table.column_index(c.table.as_deref(), &c.column) {
                Some(i) => AnnotationTarget::Column(i),
                None => AnnotationTarget::Table,
            },
        },
        UnitSemantics::Comparison { column, .. }
        | UnitSemantics::Like { column, .. }
        | UnitSemantics::Between { column, .. }
        | UnitSemantics::NullCheck { column, .. }
        | UnitSemantics::InValues { column, .. }
        | UnitSemantics::GroupKey { column } => col_target(column),
        UnitSemantics::ColumnComparison { left, .. } => {
            if unit.clause == ClauseKind::Join {
                // Join predicates describe the table linkage.
                AnnotationTarget::Table
            } else {
                col_target(left)
            }
        }
        UnitSemantics::SubqueryPredicate { column, .. } => match column {
            Some(c) => col_target(c),
            None => AnnotationTarget::Table,
        },
        UnitSemantics::Disjunction { columns, .. } => match columns.first() {
            Some(c) => col_target(c),
            None => AnnotationTarget::Table,
        },
        UnitSemantics::HavingCondition { .. } => AnnotationTarget::Table,
        // A CTE definition describes an intermediate table the whole query
        // reads from — global semantics, like a join linkage.
        UnitSemantics::CteDefinition { .. } => AnnotationTarget::Table,
        UnitSemantics::CaseMapping { operand, .. } => match operand {
            // A CASE mapping re-labels its discriminating column when one
            // exists; otherwise it speaks about the row as a whole.
            Some(c) => col_target(c),
            None => AnnotationTarget::Table,
        },
        UnitSemantics::OrderKey { .. }
        | UnitSemantics::RowLimit { .. }
        | UnitSemantics::SetOperation { .. } => AnnotationTarget::Result,
        UnitSemantics::Opaque { columns, .. } => match columns.first() {
            Some(c) => col_target(c),
            None => AnnotationTarget::Table,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_provenance::track_provenance;
    use cyclesql_sql::parse;
    use cyclesql_storage::{
        execute, ColumnDef, DataType, Database, DatabaseSchema, TableSchema, Value,
    };

    fn flight_db() -> Database {
        let mut schema = DatabaseSchema::new("flight_1");
        schema.add_table(TableSchema::new(
            "aircraft",
            vec![
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ],
        ));
        schema.add_table(TableSchema::new(
            "flight",
            vec![
                ColumnDef::new("flno", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
            ],
        ));
        schema.add_foreign_key("flight", "aid", "aircraft", "aid");
        let mut db = Database::new(schema);
        db.insert("aircraft", vec![Value::Int(1), Value::from("Boeing 747-400")]);
        db.insert("aircraft", vec![Value::Int(3), Value::from("Airbus A340-300")]);
        db.insert("flight", vec![Value::Int(7), Value::Int(3)]);
        db.insert("flight", vec![Value::Int(13), Value::Int(3)]);
        db
    }

    fn enriched_for(sql: &str) -> (EnrichedProvenance, Query) {
        let db = flight_db();
        let q = parse(sql).unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        (enrich(&q, &prov.table), q)
    }

    use cyclesql_sql::Query;

    #[test]
    fn figure5_count_annotates_table_filter_annotates_column() {
        let (e, q) = enriched_for(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
             WHERE T2.name = 'Airbus A340-300'",
        );
        assert!(e.is_total_for(&q));
        // count(*) → table level
        let table_anns = e.table_annotations();
        assert!(table_anns.iter().any(|a| matches!(
            &a.unit.semantics,
            UnitSemantics::Aggregate { column: None, .. }
        )));
        // name filter → the aircraft.name column
        let name_col = e.table.column_index(Some("aircraft"), "name").unwrap();
        let col_anns = e.column_annotations(name_col);
        assert!(col_anns.iter().any(|a| matches!(
            &a.unit.semantics,
            UnitSemantics::Comparison { .. }
        )));
    }

    #[test]
    fn join_condition_is_table_level() {
        let (e, _) = enriched_for(
            "SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid",
        );
        assert!(e.table_annotations().iter().any(|a| a.unit.clause == ClauseKind::Join));
    }

    #[test]
    fn limit_is_result_level() {
        let (e, _) =
            enriched_for("SELECT flno FROM flight ORDER BY flno DESC LIMIT 1");
        let result_anns = e.result_annotations();
        assert!(result_anns.iter().any(|a| a.unit.clause == ClauseKind::Limit));
        assert!(result_anns.iter().any(|a| a.unit.clause == ClauseKind::OrderBy));
    }

    #[test]
    fn projection_lands_on_its_column() {
        let (e, _) = enriched_for("SELECT flno FROM flight WHERE aid = 3");
        let flno = e.table.column_index(Some("flight"), "flno").unwrap();
        assert!(e
            .column_annotations(flno)
            .iter()
            .any(|a| a.unit.clause == ClauseKind::Select));
    }

    #[test]
    fn enrichment_total_for_complex_query() {
        let (e, q) = enriched_for(
            "SELECT count(*), T2.name FROM flight AS T1 JOIN aircraft AS T2 \
             ON T1.aid = T2.aid GROUP BY T2.name HAVING count(*) > 1 \
             ORDER BY count(*) DESC LIMIT 1",
        );
        assert!(e.is_total_for(&q), "every unit must be anchored");
    }

    #[test]
    fn empty_provenance_anchors_everything_globally() {
        let db = flight_db();
        let q = parse("SELECT flno FROM flight WHERE aid = 99").unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        assert!(prov.empty_result);
        let e = enrich(&q, &prov.table);
        assert!(e.is_total_for(&q));
        assert!(e.annotations.iter().all(|a| a.target != AnnotationTarget::Result
            || matches!(a.unit.clause, ClauseKind::OrderBy | ClauseKind::Limit | ClauseKind::SetOp)));
    }
}
