//! Substrate microbenchmarks (performance-book style): parser throughput,
//! executor cost per query class, provenance-rewrite overhead, explanation
//! generation, and NLI feature extraction + scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use cyclesql_core::experiments::ExperimentContext;
use cyclesql_nli::extract_features;
use cyclesql_provenance::track_provenance;
use cyclesql_sql::{canonical_key, parse, to_sql};
use cyclesql_storage::execute;

const COMPLEX_SQL: &str =
    "SELECT count(T2.language), T1.name FROM country AS T1 JOIN countrylanguage AS T2 \
     ON T1.code = T2.countrycode WHERE T1.continent = 'Europe' \
     GROUP BY T1.name HAVING count(*) >= 2 ORDER BY count(*) DESC LIMIT 3";

fn bench_substrates(c: &mut Criterion) {
    let ctx = ExperimentContext::shared_quick();
    let db = ctx.spider.databases.get("world_1").expect("world db");
    let query = parse(COMPLEX_SQL).expect("parse");
    let result = execute(db, &query).expect("execute");

    c.bench_function("micro_parse_complex", |b| b.iter(|| parse(COMPLEX_SQL).unwrap()));
    c.bench_function("micro_print", |b| b.iter(|| to_sql(&query)));
    c.bench_function("micro_canonicalize", |b| b.iter(|| canonical_key(&query)));
    c.bench_function("micro_execute_group_join", |b| b.iter(|| execute(db, &query).unwrap()));
    c.bench_function("micro_provenance_track", |b| {
        b.iter(|| track_provenance(db, &query, &result, 0).unwrap())
    });

    // Hash-join fast path vs the forced nested-loop general path.
    let equi = parse(
        "SELECT count(*) FROM countrylanguage AS T1 JOIN country AS T2 ON T1.countrycode = T2.code",
    )
    .unwrap();
    let nested = parse(
        "SELECT count(*) FROM countrylanguage AS T1 JOIN country AS T2 \
         ON T1.countrycode = T2.code AND 1 = 1",
    )
    .unwrap();
    c.bench_function("micro_join_hash_path", |b| b.iter(|| execute(db, &equi).unwrap()));
    c.bench_function("micro_join_nested_path", |b| b.iter(|| execute(db, &nested).unwrap()));

    let prov = track_provenance(db, &query, &result, 0).unwrap();
    c.bench_function("micro_explanation_generate", |b| {
        b.iter(|| cyclesql_explain::generate_explanation(db, &query, &result, 0, &prov))
    });

    let explanation = cyclesql_explain::generate_explanation(db, &query, &result, 0, &prov);
    let question = "Return the name of European countries having at least 2 languages.";
    c.bench_function("micro_nli_features_and_score", |b| {
        b.iter(|| {
            let f = extract_features(question, &explanation.text, &explanation.facets);
            ctx.verifier.model.score(&f)
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
