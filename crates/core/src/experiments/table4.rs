//! Table IV: the case study — five representative queries on the
//! `world_1`-like database with their executed SQL, to-explained result,
//! and the CycleSQL-generated (and polished) NL explanation.

use super::ExperimentContext;
use cyclesql_benchgen::{BenchmarkItem, Split};
use cyclesql_explain::{generate_explanation, polish};
use cyclesql_provenance::track_provenance;
use serde::Serialize;
use std::fmt::Write as _;

/// One case-study entry.
#[derive(Debug, Clone, Serialize)]
pub struct CaseStudyEntry {
    /// Query label (Q1…Q5).
    pub label: String,
    /// The NL question.
    pub question: String,
    /// The executed SQL.
    pub sql: String,
    /// The to-explained query result (first row, rendered).
    pub result: String,
    /// The raw rule-generated explanation.
    pub explanation: String,
    /// The polished explanation shown to users.
    pub polished: String,
}

/// The case study.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Result {
    /// Five entries covering the paper's structural spread.
    pub entries: Vec<CaseStudyEntry>,
}

/// Picks the five structural classes of the paper's Table IV: a count over
/// a join (Q1), a simple lookup (Q2), an INTERSECT (Q3), a negated nested
/// query (Q4), and a GROUP BY + HAVING (Q5).
const CASE_TEMPLATES: [(&str, &str); 5] = [
    ("Q1", "detail_count"),
    ("Q2", "lookup_num"),
    ("Q3", "intersect"),
    ("Q4", "not_in_subquery"),
    ("Q5", "group_having"),
];

/// Runs the case study against the world database of the dev split.
pub fn run(ctx: &ExperimentContext) -> Table4Result {
    let mut entries = Vec::new();
    for (label, template) in CASE_TEMPLATES {
        let Some((idx, item)) = ctx
            .spider
            .dev
            .iter()
            .enumerate()
            .find(|(_, i)| i.db_name == "world_1" && i.template == template)
        else {
            continue;
        };
        if let Some(entry) = explain_item(ctx, idx, item, label) {
            entries.push(entry);
        }
    }
    Table4Result { entries }
}

fn explain_item(
    ctx: &ExperimentContext,
    idx: usize,
    item: &BenchmarkItem,
    label: &str,
) -> Option<CaseStudyEntry> {
    let db = ctx.spider.database(item);
    // The gold AST and result come out of the session's prepared artifacts.
    let prep = ctx.spider.prepared_item(Split::Dev, idx);
    let query = prep.gold_ast.as_deref()?;
    let result = prep.gold_result.as_deref()?;
    let prov = track_provenance(db, query, result, 0).ok()?;
    let explanation = generate_explanation(db, query, result, 0, &prov);
    let result_render = match result.rows.first() {
        Some(row) => {
            let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            format!("{} = ({})", result.columns.join(", "), vals.join(", "))
        }
        None => "(empty result)".to_string(),
    };
    Some(CaseStudyEntry {
        label: label.to_string(),
        question: item.question.clone(),
        sql: item.gold_sql.clone(),
        result: result_render,
        polished: polish(&explanation.text),
        explanation: explanation.text,
    })
}

impl Table4Result {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table IV: case study on the world database");
        for e in &self.entries {
            let _ = writeln!(out, "--- {} ---", e.label);
            let _ = writeln!(out, "NL query     : {}", e.question);
            let _ = writeln!(out, "SQL          : {}", e.sql);
            let _ = writeln!(out, "Result       : {}", e.result);
            let _ = writeln!(out, "Explanation  : {}", e.explanation);
            let _ = writeln!(out, "Polished     : {}", e.polished);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_covers_the_five_structures() {
        let ctx = ExperimentContext::shared_quick();
        let t = run(ctx);
        assert!(
            t.entries.len() >= 4,
            "expected most structural classes: got {:?}",
            t.entries.iter().map(|e| &e.label).collect::<Vec<_>>()
        );
        for e in &t.entries {
            assert!(!e.explanation.is_empty(), "{}: empty explanation", e.label);
            assert!(
                e.explanation.starts_with("The query returns"),
                "{}: missing summary: {}",
                e.label,
                e.explanation
            );
        }
    }

    #[test]
    fn explanations_quote_result_values() {
        let ctx = ExperimentContext::shared_quick();
        let t = run(ctx);
        let q1 = t.entries.iter().find(|e| e.label == "Q1");
        if let Some(q1) = q1 {
            // The count value appears in the explanation text.
            let count = q1
                .result
                .rsplit("= (")
                .next()
                .unwrap()
                .trim_end_matches(')')
                .trim()
                .to_string();
            assert!(
                q1.explanation.contains(&count),
                "{} not in {}",
                count,
                q1.explanation
            );
        }
    }
}
