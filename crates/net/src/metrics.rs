//! Wire-tier counters: what happened at the socket and HTTP layers before
//! a request ever reached a shard. Lock-free like the engine's metrics;
//! rendered into the same `/metrics` page alongside the per-shard engine
//! families.

use cyclesql_serve::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Front-door counters.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection cap.
    pub connections_rejected: AtomicU64,
    /// Requests fully parsed off the wire.
    pub requests: AtomicU64,
    /// Requests rejected by the HTTP parser (400/413/431/501).
    pub parse_errors: AtomicU64,
    /// Idle or mid-request timeouts that closed a connection (408).
    pub timeouts: AtomicU64,
    /// Queries answered 200.
    pub queries_ok: AtomicU64,
    /// Queries shed with 503 (admission queue full).
    pub queries_shed: AtomicU64,
    /// Queries that hit their deadline (504).
    pub queries_deadline: AtomicU64,
    /// Queries naming an unserved database (404).
    pub queries_unknown_db: AtomicU64,
    /// Requests refused with 503 because the server was draining.
    pub drain_rejected: AtomicU64,
    /// Queries diverted from their primary shard to a replica.
    pub spilled: AtomicU64,
    /// Wire assembly time per parsed request (first byte → complete).
    pub assemble: Histogram,
}

/// Point-in-time counter values.
#[derive(Debug, Clone)]
pub struct NetMetricsSnapshot {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections turned away at the connection cap.
    pub connections_rejected: u64,
    /// Requests fully parsed off the wire.
    pub requests: u64,
    /// Requests rejected by the HTTP parser.
    pub parse_errors: u64,
    /// Connection timeouts.
    pub timeouts: u64,
    /// Queries answered 200.
    pub queries_ok: u64,
    /// Queries shed with 503.
    pub queries_shed: u64,
    /// Queries that hit their deadline.
    pub queries_deadline: u64,
    /// Queries naming an unserved database.
    pub queries_unknown_db: u64,
    /// Requests refused while draining.
    pub drain_rejected: u64,
    /// Queries spilled to a replica shard.
    pub spilled: u64,
}

impl NetMetrics {
    /// Snapshots every counter.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetMetricsSnapshot {
            connections_accepted: load(&self.connections_accepted),
            connections_rejected: load(&self.connections_rejected),
            requests: load(&self.requests),
            parse_errors: load(&self.parse_errors),
            timeouts: load(&self.timeouts),
            queries_ok: load(&self.queries_ok),
            queries_shed: load(&self.queries_shed),
            queries_deadline: load(&self.queries_deadline),
            queries_unknown_db: load(&self.queries_unknown_db),
            drain_rejected: load(&self.drain_rejected),
            spilled: load(&self.spilled),
        }
    }

    /// Renders the wire-tier families as Prometheus exposition text.
    pub fn render(&self) -> String {
        let s = self.snapshot();
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP cyclesql_net_{name} {help}\n# TYPE cyclesql_net_{name} counter\ncyclesql_net_{name} {value}\n"
            ));
        };
        counter(
            "connections_accepted",
            "Connections accepted.",
            s.connections_accepted,
        );
        counter(
            "connections_rejected",
            "Connections turned away at the connection cap.",
            s.connections_rejected,
        );
        counter(
            "requests",
            "Requests fully parsed off the wire.",
            s.requests,
        );
        counter(
            "parse_errors",
            "Requests rejected by the HTTP parser.",
            s.parse_errors,
        );
        counter("timeouts", "Connection idle/read timeouts.", s.timeouts);
        counter("queries_ok", "Queries answered 200.", s.queries_ok);
        counter("queries_shed", "Queries shed with 503.", s.queries_shed);
        counter(
            "queries_deadline",
            "Queries that exceeded their deadline (504).",
            s.queries_deadline,
        );
        counter(
            "queries_unknown_db",
            "Queries naming an unserved database (404).",
            s.queries_unknown_db,
        );
        counter(
            "drain_rejected",
            "Requests refused with 503 while draining.",
            s.drain_rejected,
        );
        counter(
            "spilled",
            "Queries diverted from their primary shard to a replica.",
            s.spilled,
        );
        let a = self.assemble.snapshot();
        out.push_str(&format!(
            "# HELP cyclesql_net_assemble_ms Wire assembly time per request.\n\
             # TYPE cyclesql_net_assemble_ms summary\n\
             cyclesql_net_assemble_ms{{quantile=\"0.5\"}} {}\n\
             cyclesql_net_assemble_ms{{quantile=\"0.99\"}} {}\n\
             cyclesql_net_assemble_ms_count {}\n",
            a.p50_ms, a.p99_ms, a.count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_emits_one_header_per_family() {
        let m = NetMetrics::default();
        m.queries_ok.fetch_add(3, Ordering::Relaxed);
        m.assemble.record(Duration::from_micros(250));
        let page = m.render();
        for family in [
            "cyclesql_net_connections_accepted",
            "cyclesql_net_connections_rejected",
            "cyclesql_net_requests",
            "cyclesql_net_parse_errors",
            "cyclesql_net_timeouts",
            "cyclesql_net_queries_ok",
            "cyclesql_net_queries_shed",
            "cyclesql_net_queries_deadline",
            "cyclesql_net_queries_unknown_db",
            "cyclesql_net_drain_rejected",
            "cyclesql_net_spilled",
            "cyclesql_net_assemble_ms",
        ] {
            assert_eq!(
                page.matches(&format!("# HELP {family} ")).count(),
                1,
                "{family}"
            );
        }
        assert!(page.contains("cyclesql_net_queries_ok 3\n"));
        assert!(page.contains("cyclesql_net_assemble_ms_count 1\n"));
    }
}
