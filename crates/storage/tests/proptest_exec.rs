//! Property tests for the executor: SQL-semantics invariants over randomly
//! generated table data and predicates.

use cyclesql_sql::parse;
use cyclesql_storage::{
    execute, ColumnDef, DataType, Database, DatabaseSchema, TableSchema, Value,
};
use proptest::prelude::*;

fn db_with_rows(rows: &[(i64, String, i64)]) -> Database {
    let mut schema = DatabaseSchema::new("prop");
    schema.add_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Int),
        ],
    ));
    schema.add_table(TableSchema::new(
        "u",
        vec![
            ColumnDef::new("uid", DataType::Int),
            ColumnDef::new("tid", DataType::Int),
        ],
    ));
    schema.add_foreign_key("u", "tid", "t", "id");
    let mut db = Database::new(schema);
    for (i, (id, name, score)) in rows.iter().enumerate() {
        db.insert("t", vec![Value::Int(*id), Value::from(name.clone()), Value::Int(*score)]);
        // A child row for every other parent.
        if i % 2 == 0 {
            db.insert("u", vec![Value::Int(i as i64), Value::Int(*id)]);
        }
    }
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, String, i64)>> {
    proptest::collection::vec(
        (0i64..50, "[a-f]{1,4}", -100i64..100),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn where_filter_is_sound(rows in rows_strategy(), threshold in -100i64..100) {
        let db = db_with_rows(&rows);
        let q = parse(&format!("SELECT score FROM t WHERE score > {threshold}")).unwrap();
        let result = execute(&db, &q).unwrap();
        for row in &result.rows {
            match &row[0] {
                Value::Int(s) => prop_assert!(*s > threshold),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        // Completeness: the count matches a direct scan.
        let expected = rows.iter().filter(|(_, _, s)| *s > threshold).count();
        prop_assert_eq!(result.len(), expected);
    }

    #[test]
    fn count_star_equals_row_count(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let q = parse("SELECT count(*) FROM t").unwrap();
        let result = execute(&db, &q).unwrap();
        prop_assert_eq!(&result.rows[0][0], &Value::Int(rows.len() as i64));
    }

    #[test]
    fn limit_is_respected(rows in rows_strategy(), k in 0u64..30) {
        let db = db_with_rows(&rows);
        let q = parse(&format!("SELECT id FROM t ORDER BY id ASC LIMIT {k}")).unwrap();
        let result = execute(&db, &q).unwrap();
        prop_assert!(result.len() <= k as usize);
        // Sortedness.
        for w in result.rows.windows(2) {
            let (a, b) = (&w[0][0], &w[1][0]);
            prop_assert!(a.total_cmp(b) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn distinct_has_no_duplicates(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let q = parse("SELECT DISTINCT name FROM t").unwrap();
        let result = execute(&db, &q).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &result.rows {
            prop_assert!(seen.insert(row[0].group_key()), "duplicate {:?}", row[0]);
        }
    }

    #[test]
    fn group_counts_sum_to_total(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let q = parse("SELECT name, count(*) FROM t GROUP BY name").unwrap();
        let result = execute(&db, &q).unwrap();
        let total: i64 = result
            .rows
            .iter()
            .map(|r| match &r[1] {
                Value::Int(n) => *n,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
    }

    #[test]
    fn min_max_bound_all_values(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let db = db_with_rows(&rows);
        let q = parse("SELECT min(score), max(score) FROM t").unwrap();
        let result = execute(&db, &q).unwrap();
        let lo = result.rows[0][0].as_f64().unwrap();
        let hi = result.rows[0][1].as_f64().unwrap();
        for (_, _, s) in &rows {
            prop_assert!(lo <= *s as f64 && *s as f64 <= hi);
        }
    }

    #[test]
    fn union_is_superset_of_both_sides(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let left = execute(&db, &parse("SELECT name FROM t WHERE score > 0").unwrap()).unwrap();
        let union = execute(
            &db,
            &parse("SELECT name FROM t WHERE score > 0 UNION SELECT name FROM t WHERE score <= 0")
                .unwrap(),
        )
        .unwrap();
        let union_keys: std::collections::HashSet<String> =
            union.rows.iter().map(|r| r[0].group_key()).collect();
        for row in &left.rows {
            prop_assert!(union_keys.contains(&row[0].group_key()));
        }
    }

    #[test]
    fn intersect_is_subset_of_both_sides(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let inter = execute(
            &db,
            &parse("SELECT name FROM t WHERE score > 0 INTERSECT SELECT name FROM t WHERE id > 10")
                .unwrap(),
        )
        .unwrap();
        let left = execute(&db, &parse("SELECT name FROM t WHERE score > 0").unwrap()).unwrap();
        let left_keys: std::collections::HashSet<String> =
            left.rows.iter().map(|r| r[0].group_key()).collect();
        for row in &inter.rows {
            prop_assert!(left_keys.contains(&row[0].group_key()));
        }
    }

    #[test]
    fn join_row_count_matches_fk_fanout(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let joined = execute(
            &db,
            &parse("SELECT count(*) FROM u AS a JOIN t AS b ON a.tid = b.id").unwrap(),
        )
        .unwrap();
        // Every u row references an existing t id; ids may repeat in t, so
        // the join count is the sum of per-u matches.
        let u = db.table("u").unwrap();
        let t = db.table("t").unwrap();
        let mut expected = 0i64;
        for urow in &u.rows {
            let tid = &urow[1];
            expected += t
                .rows
                .iter()
                .filter(|tr| tr[0].sql_eq(tid) == Some(true))
                .count() as i64;
        }
        prop_assert_eq!(&joined.rows[0][0], &Value::Int(expected));
    }

    #[test]
    fn bag_eq_is_reflexive_and_symmetric(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let a = execute(&db, &parse("SELECT name, score FROM t").unwrap()).unwrap();
        let b = execute(&db, &parse("SELECT name, score FROM t").unwrap()).unwrap();
        prop_assert!(a.bag_eq(&a));
        prop_assert!(a.bag_eq(&b) && b.bag_eq(&a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hash-join fast path must agree exactly with the nested-loop
    /// general path. `ON a.x = b.y` takes the fast path; appending a
    /// tautological conjunct forces the general path over identical data.
    #[test]
    fn hash_join_matches_nested_loop(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let fast = execute(
            &db,
            &parse("SELECT a.uid, b.name FROM u AS a JOIN t AS b ON a.tid = b.id").unwrap(),
        )
        .unwrap();
        let general = execute(
            &db,
            &parse(
                "SELECT a.uid, b.name FROM u AS a JOIN t AS b ON a.tid = b.id AND 1 = 1",
            )
            .unwrap(),
        )
        .unwrap();
        prop_assert!(fast.bag_eq(&general), "fast: {fast:?} vs general: {general:?}");
    }

    /// Same equivalence for LEFT JOIN (null padding must match).
    #[test]
    fn hash_left_join_matches_nested_loop(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let fast = execute(
            &db,
            &parse("SELECT b.id, a.uid FROM t AS b LEFT JOIN u AS a ON a.tid = b.id").unwrap(),
        )
        .unwrap();
        let general = execute(
            &db,
            &parse(
                "SELECT b.id, a.uid FROM t AS b LEFT JOIN u AS a ON a.tid = b.id AND 1 = 1",
            )
            .unwrap(),
        )
        .unwrap();
        prop_assert!(fast.bag_eq(&general), "fast: {fast:?} vs general: {general:?}");
    }
}
