//! Query decomposition into *query units* (Section IV-B of the paper).
//!
//! CycleSQL "treats the SQL query as a text string and divides the string
//! into chunks that correspond to each clause". We operate on the AST
//! instead, producing one [`QueryUnit`] per clause element: each projection
//! item, each `WHERE` conjunct, each `GROUP BY` key, the `HAVING` predicate,
//! each `ORDER BY` key, the `LIMIT`, and each set operator. A subquery
//! "embodies complete semantics" and is kept as a single unit.

use crate::ast::*;
use serde::{Deserialize, Serialize};

#[allow(missing_docs)] // variant/field names are self-describing
/// The clause a unit was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClauseKind {
    With,
    Select,
    Where,
    GroupBy,
    Having,
    OrderBy,
    Limit,
    Join,
    SetOp,
}

impl ClauseKind {
    /// Keyword used when rendering annotations.
    pub fn keyword(self) -> &'static str {
        match self {
            ClauseKind::With => "WITH",
            ClauseKind::Select => "SELECT",
            ClauseKind::Where => "WHERE",
            ClauseKind::GroupBy => "GROUP BY",
            ClauseKind::Having => "HAVING",
            ClauseKind::OrderBy => "ORDER BY",
            ClauseKind::Limit => "LIMIT",
            ClauseKind::Join => "JOIN",
            ClauseKind::SetOp => "SET",
        }
    }
}

#[allow(missing_docs)] // variant/field names are self-describing
/// The semantic payload of a query unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnitSemantics {
    /// Plain column projection.
    Projection { column: ColumnRef },
    /// `SELECT *` or `SELECT t.*`.
    ProjectAll { table: Option<String> },
    /// Aggregate projection such as `count(*)` or `avg(T1.age)`.
    Aggregate { func: AggFunc, distinct: bool, column: Option<ColumnRef> },
    /// Comparison filter `column op literal`.
    Comparison { column: ColumnRef, op: BinOp, value: Literal },
    /// Comparison between two columns (usually a join predicate).
    ColumnComparison { left: ColumnRef, op: BinOp, right: ColumnRef },
    /// `column [NOT] LIKE pattern`.
    Like { column: ColumnRef, pattern: String, negated: bool },
    /// `column [NOT] BETWEEN low AND high`.
    Between { column: ColumnRef, low: Literal, high: Literal, negated: bool },
    /// `column IS [NOT] NULL`.
    NullCheck { column: ColumnRef, negated: bool },
    /// `column [NOT] IN (values...)`.
    InValues { column: ColumnRef, values: Vec<Literal>, negated: bool },
    /// A subquery predicate, kept whole. `column` is the outer column when
    /// present (IN / comparison); `None` for EXISTS. `op` carries the
    /// comparison operator for scalar-subquery comparisons.
    SubqueryPredicate { column: Option<ColumnRef>, negated: bool, op: Option<BinOp>, sql: String },
    /// A disjunction, kept whole (OR semantics don't decompose cleanly).
    Disjunction { sql: String, columns: Vec<ColumnRef> },
    /// A `HAVING` aggregate condition.
    HavingCondition { func: Option<AggFunc>, column: Option<ColumnRef>, op: BinOp, value: Literal },
    /// A grouping key.
    GroupKey { column: ColumnRef },
    /// An ordering key, possibly an aggregate.
    OrderKey { expr_sql: String, agg: Option<AggFunc>, column: Option<ColumnRef>, order: SortOrder },
    /// Row limit.
    RowLimit { n: u64 },
    /// Set operation combining two branches.
    SetOperation { op: SetOp },
    /// A `WITH name AS (...)` definition: an intermediate result the rest
    /// of the query reads from. `tables` are the base tables the body
    /// draws on.
    CteDefinition { name: String, sql: String, tables: Vec<String> },
    /// A `CASE` mapping: `operand` is the discriminating column when one
    /// exists (simple form, or the first column of the first condition),
    /// `branches` counts the WHEN arms.
    CaseMapping { operand: Option<ColumnRef>, branches: usize, has_else: bool, sql: String },
    /// Fallback for structures not covered above — the raw rendering.
    Opaque { sql: String, columns: Vec<ColumnRef> },
}

#[allow(missing_docs)] // variant/field names are self-describing
/// One decomposed query unit: a clause element with its semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryUnit {
    pub clause: ClauseKind,
    pub semantics: UnitSemantics,
    /// Index of the select core this unit came from (0 for a plain query;
    /// 0/1/… across set-operation branches).
    pub core_index: usize,
}

/// Decomposes a query into its units, in clause order.
pub fn decompose(q: &Query) -> Vec<QueryUnit> {
    let mut units = Vec::new();
    for cte in &q.ctes {
        units.push(QueryUnit {
            clause: ClauseKind::With,
            semantics: UnitSemantics::CteDefinition {
                name: cte.name.clone(),
                sql: cte.query.to_string(),
                tables: cte.query.all_tables(),
            },
            core_index: 0,
        });
    }
    decompose_body(&q.body, &mut units, &mut 0);
    for o in &q.order_by {
        let (agg, column) = match &o.expr {
            Expr::Agg { func, arg, .. } => (
                Some(*func),
                match arg {
                    FuncArg::Expr(e) => first_column(e),
                    FuncArg::Star => None,
                },
            ),
            other => (None, first_column(other)),
        };
        units.push(QueryUnit {
            clause: ClauseKind::OrderBy,
            semantics: UnitSemantics::OrderKey {
                expr_sql: o.expr.to_string(),
                agg,
                column,
                order: o.order,
            },
            core_index: 0,
        });
    }
    if let Some(n) = q.limit {
        units.push(QueryUnit {
            clause: ClauseKind::Limit,
            semantics: UnitSemantics::RowLimit { n },
            core_index: 0,
        });
    }
    units
}

fn decompose_body(body: &QueryBody, units: &mut Vec<QueryUnit>, core_idx: &mut usize) {
    match body {
        QueryBody::Select(core) => {
            decompose_core(core, units, *core_idx);
            *core_idx += 1;
        }
        QueryBody::SetOp { op, left, right } => {
            decompose_body(left, units, core_idx);
            units.push(QueryUnit {
                clause: ClauseKind::SetOp,
                semantics: UnitSemantics::SetOperation { op: *op },
                core_index: *core_idx,
            });
            decompose_body(right, units, core_idx);
        }
    }
}

fn decompose_core(core: &SelectCore, units: &mut Vec<QueryUnit>, idx: usize) {
    for p in &core.projections {
        let semantics = match p {
            SelectItem::Star => UnitSemantics::ProjectAll { table: None },
            SelectItem::QualifiedStar(t) => UnitSemantics::ProjectAll { table: Some(t.clone()) },
            SelectItem::Expr { expr, .. } => projection_semantics(expr),
        };
        units.push(QueryUnit { clause: ClauseKind::Select, semantics, core_index: idx });
    }
    for j in &core.from.joins {
        if let Some(on) = &j.on {
            for conj in on.conjuncts() {
                units.push(QueryUnit {
                    clause: ClauseKind::Join,
                    semantics: predicate_semantics(conj),
                    core_index: idx,
                });
            }
        }
    }
    if let Some(w) = &core.where_clause {
        for conj in w.conjuncts() {
            units.push(QueryUnit {
                clause: ClauseKind::Where,
                semantics: predicate_semantics(conj),
                core_index: idx,
            });
        }
    }
    for g in &core.group_by {
        if let Some(c) = first_column(g) {
            units.push(QueryUnit {
                clause: ClauseKind::GroupBy,
                semantics: UnitSemantics::GroupKey { column: c },
                core_index: idx,
            });
        }
    }
    if let Some(h) = &core.having {
        for conj in h.conjuncts() {
            units.push(QueryUnit {
                clause: ClauseKind::Having,
                semantics: having_semantics(conj),
                core_index: idx,
            });
        }
    }
}

fn projection_semantics(expr: &Expr) -> UnitSemantics {
    match expr {
        Expr::Column(c) => UnitSemantics::Projection { column: c.clone() },
        Expr::Agg { func, distinct, arg } => UnitSemantics::Aggregate {
            func: *func,
            distinct: *distinct,
            column: match arg {
                FuncArg::Star => None,
                FuncArg::Expr(e) => first_column(e),
            },
        },
        Expr::Case { .. } => case_semantics(expr),
        other => UnitSemantics::Opaque {
            sql: other.to_string(),
            columns: other.columns().into_iter().cloned().collect(),
        },
    }
}

fn case_semantics(e: &Expr) -> UnitSemantics {
    let Expr::Case { operand, branches, else_ } = e else {
        return opaque(e);
    };
    let discriminant = operand
        .as_deref()
        .and_then(first_column)
        .or_else(|| branches.first().and_then(|(cond, _)| first_column(cond)));
    UnitSemantics::CaseMapping {
        operand: discriminant,
        branches: branches.len(),
        has_else: else_.is_some(),
        sql: e.to_string(),
    }
}

fn predicate_semantics(e: &Expr) -> UnitSemantics {
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => {
                    UnitSemantics::Comparison { column: c.clone(), op: *op, value: v.clone() }
                }
                (Expr::Literal(v), Expr::Column(c)) => UnitSemantics::Comparison {
                    column: c.clone(),
                    op: op.flipped(),
                    value: v.clone(),
                },
                (Expr::Column(a), Expr::Column(b)) => UnitSemantics::ColumnComparison {
                    left: a.clone(),
                    op: *op,
                    right: b.clone(),
                },
                (Expr::Column(c), Expr::ScalarSubquery(q)) => UnitSemantics::SubqueryPredicate {
                    column: Some(c.clone()),
                    negated: false,
                    op: Some(*op),
                    sql: q.to_string(),
                },
                _ => UnitSemantics::Opaque {
                    sql: e.to_string(),
                    columns: e.columns().into_iter().cloned().collect(),
                },
            }
        }
        Expr::Binary { op: BinOp::Or, .. } => UnitSemantics::Disjunction {
            sql: e.to_string(),
            columns: e.columns().into_iter().cloned().collect(),
        },
        Expr::Like { expr, pattern, negated } => match first_column(expr) {
            Some(c) => UnitSemantics::Like {
                column: c,
                pattern: pattern.clone(),
                negated: *negated,
            },
            None => opaque(e),
        },
        Expr::Between { expr, low, high, negated } => {
            match (first_column(expr), literal_of(low), literal_of(high)) {
                (Some(c), Some(lo), Some(hi)) => UnitSemantics::Between {
                    column: c,
                    low: lo,
                    high: hi,
                    negated: *negated,
                },
                _ => opaque(e),
            }
        }
        Expr::IsNull { expr, negated } => match first_column(expr) {
            Some(c) => UnitSemantics::NullCheck { column: c, negated: *negated },
            None => opaque(e),
        },
        Expr::InList { expr, list, negated } => match first_column(expr) {
            Some(c) => {
                let values: Vec<Literal> = list
                    .iter()
                    .filter_map(literal_of)
                    .collect();
                if values.len() == list.len() {
                    UnitSemantics::InValues { column: c, values, negated: *negated }
                } else {
                    opaque(e)
                }
            }
            None => opaque(e),
        },
        Expr::InSubquery { expr, subquery, negated } => UnitSemantics::SubqueryPredicate {
            column: first_column(expr),
            negated: *negated,
            op: None,
            sql: subquery.to_string(),
        },
        Expr::Exists { subquery, negated } => UnitSemantics::SubqueryPredicate {
            column: None,
            negated: *negated,
            op: None,
            sql: subquery.to_string(),
        },
        Expr::Not(inner) => match predicate_semantics(inner) {
            UnitSemantics::Comparison { column, op: BinOp::Eq, value } => {
                UnitSemantics::Comparison { column, op: BinOp::NotEq, value }
            }
            _ => opaque(e),
        },
        Expr::Case { .. } => case_semantics(e),
        _ => opaque(e),
    }
}

fn having_semantics(e: &Expr) -> UnitSemantics {
    if let Expr::Binary { op, left, right } = e {
        if op.is_comparison() {
            if let (Expr::Agg { func, arg, .. }, Expr::Literal(v)) =
                (left.as_ref(), right.as_ref())
            {
                return UnitSemantics::HavingCondition {
                    func: Some(*func),
                    column: match arg {
                        FuncArg::Star => None,
                        FuncArg::Expr(inner) => first_column(inner),
                    },
                    op: *op,
                    value: v.clone(),
                };
            }
        }
    }
    predicate_semantics(e)
}

fn opaque(e: &Expr) -> UnitSemantics {
    UnitSemantics::Opaque {
        sql: e.to_string(),
        columns: e.columns().into_iter().cloned().collect(),
    }
}

fn first_column(e: &Expr) -> Option<ColumnRef> {
    e.columns().first().map(|c| (*c).clone())
}

fn literal_of(e: &Expr) -> Option<Literal> {
    match e {
        Expr::Literal(l) => Some(l.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn units(sql: &str) -> Vec<QueryUnit> {
        decompose(&parse(sql).unwrap())
    }

    #[test]
    fn count_star_with_filter() {
        let us = units("SELECT count(*) FROM flight WHERE name = 'Airbus A340-300'");
        assert_eq!(us.len(), 2);
        assert!(matches!(
            &us[0].semantics,
            UnitSemantics::Aggregate { func: AggFunc::Count, column: None, .. }
        ));
        assert!(matches!(
            &us[1].semantics,
            UnitSemantics::Comparison { op: BinOp::Eq, .. }
        ));
    }

    #[test]
    fn join_condition_is_column_comparison() {
        let us = units(
            "SELECT T1.name FROM country AS T1 JOIN city AS T2 ON T1.code = T2.countrycode",
        );
        assert!(us.iter().any(|u| u.clause == ClauseKind::Join
            && matches!(&u.semantics, UnitSemantics::ColumnComparison { .. })));
    }

    #[test]
    fn group_by_having_units() {
        let us = units(
            "SELECT count(*), name FROM t GROUP BY name HAVING count(*) > 2",
        );
        assert!(us.iter().any(|u| u.clause == ClauseKind::GroupBy));
        let having = us.iter().find(|u| u.clause == ClauseKind::Having).unwrap();
        assert!(matches!(
            &having.semantics,
            UnitSemantics::HavingCondition { func: Some(AggFunc::Count), op: BinOp::Gt, .. }
        ));
    }

    #[test]
    fn subquery_kept_whole() {
        let us = units(
            "SELECT name FROM country WHERE code NOT IN \
             (SELECT countrycode FROM countrylanguage WHERE language = 'English')",
        );
        let sub = us.iter().find(|u| u.clause == ClauseKind::Where).unwrap();
        match &sub.semantics {
            UnitSemantics::SubqueryPredicate { negated, sql, column, .. } => {
                assert!(*negated);
                assert!(sql.contains("countrylanguage"));
                assert_eq!(column.as_ref().unwrap().column, "code");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_and_limit_units() {
        let us = units("SELECT a FROM t ORDER BY count(*) DESC LIMIT 3");
        let order = us.iter().find(|u| u.clause == ClauseKind::OrderBy).unwrap();
        assert!(matches!(
            &order.semantics,
            UnitSemantics::OrderKey { agg: Some(AggFunc::Count), order: SortOrder::Desc, .. }
        ));
        let limit = us.iter().find(|u| u.clause == ClauseKind::Limit).unwrap();
        assert!(matches!(&limit.semantics, UnitSemantics::RowLimit { n: 3 }));
    }

    #[test]
    fn set_op_unit_between_branch_units() {
        let us = units(
            "SELECT name FROM a WHERE x = 1 INTERSECT SELECT name FROM a WHERE y = 2",
        );
        let pos = us.iter().position(|u| u.clause == ClauseKind::SetOp).unwrap();
        assert!(us[..pos].iter().any(|u| u.core_index == 0));
        assert!(us[pos + 1..].iter().any(|u| u.core_index == 1));
    }

    #[test]
    fn disjunction_kept_whole() {
        let us = units("SELECT a FROM t WHERE x = 1 OR y = 2");
        assert_eq!(
            us.iter().filter(|u| u.clause == ClauseKind::Where).count(),
            1
        );
        assert!(matches!(
            &us.iter().find(|u| u.clause == ClauseKind::Where).unwrap().semantics,
            UnitSemantics::Disjunction { .. }
        ));
    }

    #[test]
    fn between_and_null_checks() {
        let us = units("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL");
        let wheres: Vec<_> = us.iter().filter(|u| u.clause == ClauseKind::Where).collect();
        assert_eq!(wheres.len(), 2);
        assert!(matches!(&wheres[0].semantics, UnitSemantics::Between { negated: false, .. }));
        assert!(matches!(&wheres[1].semantics, UnitSemantics::NullCheck { negated: true, .. }));
    }

    #[test]
    fn star_projection() {
        let us = units("SELECT * FROM t");
        assert!(matches!(&us[0].semantics, UnitSemantics::ProjectAll { table: None }));
    }

    #[test]
    fn cte_definition_unit_leads() {
        let us = units(
            "WITH big AS (SELECT name FROM city WHERE population > 1000) SELECT name FROM big",
        );
        assert_eq!(us[0].clause, ClauseKind::With);
        match &us[0].semantics {
            UnitSemantics::CteDefinition { name, sql, tables } => {
                assert_eq!(name, "big");
                assert!(sql.contains("population"));
                assert_eq!(tables, &vec!["city".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_projection_unit() {
        let us = units(
            "SELECT CASE WHEN population > 1000 THEN 'big' ELSE 'small' END FROM city",
        );
        match &us[0].semantics {
            UnitSemantics::CaseMapping { operand, branches, has_else, .. } => {
                assert_eq!(operand.as_ref().unwrap().column, "population");
                assert_eq!(*branches, 1);
                assert!(*has_else);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_case_uses_operand_column() {
        let us = units("SELECT CASE continent WHEN 'Asia' THEN 1 END FROM country");
        match &us[0].semantics {
            UnitSemantics::CaseMapping { operand, has_else, .. } => {
                assert_eq!(operand.as_ref().unwrap().column, "continent");
                assert!(!*has_else);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flipped_literal_comparison_normalized() {
        let us = units("SELECT a FROM t WHERE 5 < x");
        assert!(matches!(
            &us.iter().find(|u| u.clause == ClauseKind::Where).unwrap().semantics,
            UnitSemantics::Comparison { op: BinOp::Gt, .. }
        ));
    }
}
