//! The evaluation harness: runs a model (with or without CycleSQL) over a
//! benchmark split and reports EM / EX / TS, per-difficulty breakdowns,
//! average iterations, and latency.
//!
//! The harness consumes a prepared [`EvalSession`]: gold parses, canonical
//! forms, and gold executions (dev database and TS variants) all come from
//! the session's per-item caches, so each is performed exactly once per
//! `(benchmark, item)` no matter how many models or modes are evaluated.
//! The per-item loop runs on a scoped worker pool; results are merged in
//! item order and folded sequentially, so every aggregate is bit-for-bit
//! identical to a sequential run.

use crate::cycle::{CycleSql, LoopVerifier};
use crate::metrics::Accuracy;
use crate::session::EvalSession;
use cyclesql_benchgen::{Split, Variant};
use cyclesql_models::{SimulatedModel, TranslationRequest};
use cyclesql_sql::{CanonicalSql, Difficulty};
use cyclesql_storage::execute;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregate evaluation results for one (model, configuration, split).
#[derive(Debug, Clone, Default, Serialize)]
pub struct EvalResult {
    /// Exact-match accuracy (%).
    pub em: f64,
    /// Execution accuracy (%).
    pub ex: f64,
    /// Test-suite accuracy (%).
    pub ts: f64,
    /// Execution accuracy by difficulty (%), in Easy→ExtraHard order.
    pub ex_by_difficulty: [f64; 4],
    /// Item counts by difficulty.
    pub counts_by_difficulty: [usize; 4],
    /// Average loop iterations (1.0 for base runs).
    pub avg_iterations: f64,
    /// Average inference latency in milliseconds (simulated base latency
    /// plus measured loop overhead).
    pub avg_latency_ms: f64,
    /// Items evaluated.
    pub total: usize,
}

impl EvalResult {
    /// Whether two results agree on every deterministic field.
    ///
    /// `avg_latency_ms` is excluded: it folds in measured wall-clock loop
    /// overhead, which legitimately varies between runs. Everything else is
    /// derived from seeded computation and must match bit-for-bit.
    pub fn same_outcomes(&self, other: &EvalResult) -> bool {
        self.em.to_bits() == other.em.to_bits()
            && self.ex.to_bits() == other.ex.to_bits()
            && self.ts.to_bits() == other.ts.to_bits()
            && self
                .ex_by_difficulty
                .iter()
                .zip(&other.ex_by_difficulty)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.counts_by_difficulty == other.counts_by_difficulty
            && self.avg_iterations.to_bits() == other.avg_iterations.to_bits()
            && self.total == other.total
    }
}

/// How to run the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Base: take the model's top-1 output.
    Base,
    /// CycleSQL: run the feedback loop over the candidate list.
    CycleSql,
}

/// How to distribute the per-item evaluation loop across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available core (capped at the item count).
    #[default]
    Auto,
    /// Plain sequential loop on the calling thread.
    Sequential,
    /// Exactly this many workers (capped at the item count).
    Fixed(usize),
}

impl Parallelism {
    fn worker_count(self, items: usize) -> usize {
        let n = match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
        };
        n.min(items.max(1))
    }
}

/// Options for one evaluation pass.
pub struct EvalOptions<'a> {
    /// The prepared benchmark session.
    pub session: &'a EvalSession,
    /// Which split to evaluate.
    pub split: Split,
    /// Base or +CycleSQL.
    pub mode: EvalMode,
    /// The loop (verifier + feedback); required for `EvalMode::CycleSql`.
    pub cycle: Option<&'a CycleSql>,
    /// Candidate count; defaults to the model's profile default.
    pub k: Option<usize>,
    /// Compute the TS metric (disable to speed up large sweeps).
    pub compute_ts: bool,
    /// Worker-thread policy for the per-item loop.
    pub parallelism: Parallelism,
}

fn difficulty_index(d: Difficulty) -> usize {
    match d {
        Difficulty::Easy => 0,
        Difficulty::Medium => 1,
        Difficulty::Hard => 2,
        Difficulty::ExtraHard => 3,
    }
}

/// One item's metric outcomes, produced by a worker and folded in order.
struct ItemOutcome {
    em: bool,
    ex: bool,
    ts: Option<bool>,
    diff: usize,
    iterations: usize,
    latency_ms: f64,
}

/// Runs `f(0..n)` over a scoped worker pool and returns the results in
/// index order. Workers pull indices from a shared counter (items vary a lot
/// in cost, so static partitioning would straggle); the merge reorders by
/// index so the caller's fold is independent of scheduling.
fn run_indexed<T: Send>(
    parallelism: Parallelism,
    n: usize,
    f: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let workers = parallelism.worker_count(n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        out.push((idx, f(idx)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (idx, value) in indexed {
        slots[idx] = Some(value);
    }
    slots.into_iter().map(|s| s.expect("every index evaluated")).collect()
}

/// Evaluates one model under the given options.
pub fn evaluate(model: &SimulatedModel, opts: &EvalOptions<'_>) -> EvalResult {
    let session = opts.session;
    let items = session.suite().split(opts.split);
    let severity = session.variant.severity();
    let science = session.variant == Variant::Science;
    let k = opts.k.unwrap_or(model.profile.default_k);

    let eval_item = |idx: usize| -> ItemOutcome {
        let item = &items[idx];
        let prep = session.prepared_item(opts.split, idx);
        let db = session.database(item);
        let req = TranslationRequest { item, db, k, severity, science };
        let candidates = model.translate_prepared(&req, prep.as_prepared_gold().as_ref());
        let (chosen_ast, chosen_result, iterations, overhead_ms) = match opts.mode {
            EvalMode::Base => {
                let top1_ast = candidates.first().and_then(|c| c.ast.clone());
                let top1_result = top1_ast
                    .as_deref()
                    .and_then(|q| execute(db, q).ok())
                    .map(std::sync::Arc::new);
                (top1_ast, top1_result, 1usize, 0.0)
            }
            EvalMode::CycleSql => {
                let cycle = opts.cycle.expect("CycleSql mode requires a loop");
                let outcome =
                    cycle.run_prepared(item, db, &candidates, prep.gold_result.as_deref());
                (
                    outcome.chosen_ast,
                    outcome.chosen_result,
                    outcome.iterations,
                    outcome.overhead.as_secs_f64() * 1e3,
                )
            }
        };
        let em = match (&chosen_ast, &prep.gold_canonical) {
            (Some(pred), Some(gold)) => &CanonicalSql::of(pred) == gold,
            _ => false,
        };
        let ex = match (prep.gold_result.as_deref(), chosen_result.as_deref()) {
            (Some(g), Some(p)) => p.bag_eq(g),
            _ => false,
        };
        let ts = opts.compute_ts.then(|| {
            session.ts_prepared(
                opts.split,
                idx,
                chosen_ast.as_deref(),
                chosen_result.as_deref(),
            )
        });
        ItemOutcome {
            em,
            ex,
            ts,
            diff: difficulty_index(item.difficulty),
            iterations,
            latency_ms: model.inference_latency_ms() + overhead_ms,
        }
    };

    let outcomes = run_indexed(opts.parallelism, items.len(), &eval_item);

    let mut em = Accuracy::default();
    let mut ex = Accuracy::default();
    let mut ts = Accuracy::default();
    let mut ex_diff = [Accuracy::default(); 4];
    let mut iterations_sum = 0usize;
    let mut latency_sum_ms = 0.0f64;
    for o in &outcomes {
        em.record(o.em);
        ex.record(o.ex);
        ex_diff[o.diff].record(o.ex);
        if let Some(t) = o.ts {
            ts.record(t);
        }
        iterations_sum += o.iterations;
        latency_sum_ms += o.latency_ms;
    }

    let total = items.len().max(1);
    EvalResult {
        em: em.pct(),
        ex: ex.pct(),
        ts: ts.pct(),
        ex_by_difficulty: [
            ex_diff[0].pct(),
            ex_diff[1].pct(),
            ex_diff[2].pct(),
            ex_diff[3].pct(),
        ],
        counts_by_difficulty: [
            ex_diff[0].total,
            ex_diff[1].total,
            ex_diff[2].total,
            ex_diff[3].total,
        ],
        avg_iterations: iterations_sum as f64 / total as f64,
        avg_latency_ms: latency_sum_ms / total as f64,
        total: items.len(),
    }
}

/// Per-science-domain EM (the paper's SCIENCEBENCHMARK columns report EM
/// per database).
pub fn evaluate_science_em(
    model: &SimulatedModel,
    session: &EvalSession,
    mode: EvalMode,
    cycle: Option<&CycleSql>,
    k: Option<usize>,
) -> HashMap<String, f64> {
    assert_eq!(session.variant, Variant::Science);
    let k = k.unwrap_or(model.profile.default_k);
    let mut per_db: HashMap<String, Accuracy> = HashMap::new();
    for (idx, item) in session.suite().dev.iter().enumerate() {
        let prep = session.prepared_item(Split::Dev, idx);
        let db = session.database(item);
        let req = TranslationRequest {
            item,
            db,
            k,
            severity: session.variant.severity(),
            science: true,
        };
        let candidates = model.translate_prepared(&req, prep.as_prepared_gold().as_ref());
        let chosen_ast = match mode {
            EvalMode::Base => candidates.first().and_then(|c| c.ast.clone()),
            EvalMode::CycleSql => cycle
                .expect("loop")
                .run_prepared(item, db, &candidates, prep.gold_result.as_deref())
                .chosen_ast,
        };
        let em = match (&chosen_ast, &prep.gold_canonical) {
            (Some(pred), Some(gold)) => &CanonicalSql::of(pred) == gold,
            _ => false,
        };
        per_db.entry(item.db_name.clone()).or_default().record(em);
    }
    per_db.into_iter().map(|(k, v)| (k, v.pct())).collect()
}

/// Accuracy when matching *any* beam candidate (Figure 1's evaluation rule).
pub fn any_beam_accuracy(
    model: &SimulatedModel,
    session: &EvalSession,
    split: Split,
    k: usize,
) -> f64 {
    let mut acc = Accuracy::default();
    let items = session.suite().split(split);
    for (idx, item) in items.iter().enumerate() {
        let prep = session.prepared_item(split, idx);
        let db = session.database(item);
        let req = TranslationRequest {
            item,
            db,
            k,
            severity: session.variant.severity(),
            science: session.variant == Variant::Science,
        };
        let candidates = model.translate_prepared(&req, prep.as_prepared_gold().as_ref());
        let gold = prep.gold_result.as_deref();
        acc.record(gold.is_some_and(|g| {
            candidates.iter().any(|c| {
                c.ast
                    .as_deref()
                    .and_then(|q| execute(db, q).ok())
                    .is_some_and(|r| r.bag_eq(g))
            })
        }));
    }
    acc.pct()
}

/// Convenience: evaluates base and +CycleSQL side by side.
pub fn evaluate_pair(
    model: &SimulatedModel,
    session: &EvalSession,
    split: Split,
    cycle: &CycleSql,
    compute_ts: bool,
) -> (EvalResult, EvalResult) {
    let base = evaluate(
        model,
        &EvalOptions {
            session,
            split,
            mode: EvalMode::Base,
            cycle: None,
            k: None,
            compute_ts,
            parallelism: Parallelism::Auto,
        },
    );
    let with = evaluate(
        model,
        &EvalOptions {
            session,
            split,
            mode: EvalMode::CycleSql,
            cycle: Some(cycle),
            k: None,
            compute_ts,
            parallelism: Parallelism::Auto,
        },
    );
    (base, with)
}

/// Shared handle to a frozen verifier-backed loop.
pub fn trained_loop(verifier: cyclesql_nli::TrainedVerifier) -> CycleSql {
    CycleSql::new(LoopVerifier::Trained(verifier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{em_correct, ex_correct, ts_correct, VariantCache};
    use crate::training::{train_verifier, CollectConfig};
    use cyclesql_benchgen::{build_spider_suite, SuiteConfig};
    use cyclesql_models::ModelProfile;
    use cyclesql_nli::TrainConfig;

    fn small_session() -> EvalSession {
        EvalSession::new(build_spider_suite(
            Variant::Spider,
            SuiteConfig { seed: 21, train_per_template: 1, eval_per_template: 1 },
        ))
    }

    #[test]
    fn cyclesql_improves_ex_over_base() {
        let session = small_session();
        let model = SimulatedModel::new(ModelProfile::resdsql_3b());
        let (verifier, _, _) = train_verifier(
            &session,
            &[SimulatedModel::new(ModelProfile::resdsql_large()),
              SimulatedModel::new(ModelProfile::gpt35())],
            CollectConfig::default(),
            TrainConfig::default(),
        );
        let cycle = trained_loop(verifier);
        let (base, with) = evaluate_pair(&model, &session, Split::Dev, &cycle, false);
        assert!(
            with.ex >= base.ex,
            "CycleSQL must not hurt EX: base {} vs cycle {}",
            base.ex,
            with.ex
        );
        assert!(with.avg_iterations >= 1.0);
    }

    #[test]
    fn oracle_is_an_upper_bound() {
        let session = small_session();
        let model = SimulatedModel::new(ModelProfile::resdsql_3b());
        let oracle = CycleSql::new(LoopVerifier::Oracle);
        let (base, with_oracle) = evaluate_pair(&model, &session, Split::Dev, &oracle, false);
        assert!(with_oracle.ex >= base.ex);
        // Oracle EX equals the any-beam ceiling.
        let ceiling = any_beam_accuracy(&model, &session, Split::Dev, 8);
        assert!((with_oracle.ex - ceiling).abs() < 1e-9);
    }

    #[test]
    fn any_beam_accuracy_grows_with_k() {
        let session = small_session();
        let model = SimulatedModel::new(ModelProfile::resdsql_large());
        let k1 = any_beam_accuracy(&model, &session, Split::Dev, 1);
        let k8 = any_beam_accuracy(&model, &session, Split::Dev, 8);
        assert!(k8 >= k1, "beam widening cannot lose accuracy: {k1} vs {k8}");
    }

    #[test]
    fn difficulty_counts_partition_total() {
        let session = small_session();
        let model = SimulatedModel::new(ModelProfile::smbop());
        let r = evaluate(
            &model,
            &EvalOptions {
                session: &session,
                split: Split::Dev,
                mode: EvalMode::Base,
                cycle: None,
                k: None,
                compute_ts: false,
                parallelism: Parallelism::Auto,
            },
        );
        assert_eq!(r.counts_by_difficulty.iter().sum::<usize>(), r.total);
        assert!(r.avg_latency_ms > 0.0);
    }

    #[test]
    fn prepared_metrics_agree_with_string_path_wrappers() {
        // The prepared fast path must reproduce the string wrappers'
        // decisions exactly, item by item, in both modes.
        let session = small_session();
        let oracle = CycleSql::new(LoopVerifier::Oracle);
        let severity = session.variant.severity();
        for (mode, cycle) in
            [(EvalMode::Base, None), (EvalMode::CycleSql, Some(&oracle))]
        {
            for model in
                [SimulatedModel::new(ModelProfile::resdsql_3b()),
                 SimulatedModel::new(ModelProfile::gpt35())]
            {
                // String-path reference, computed as the seed harness did.
                let cache = VariantCache::new();
                let mut em = Accuracy::default();
                let mut ex = Accuracy::default();
                let mut ts = Accuracy::default();
                for item in &session.suite().dev {
                    let db = session.database(item);
                    let req = TranslationRequest {
                        item,
                        db,
                        k: model.profile.default_k,
                        severity,
                        science: false,
                    };
                    let candidates = model.translate(&req);
                    let chosen = match mode {
                        EvalMode::Base => {
                            candidates.first().map(|c| c.sql.clone()).unwrap_or_default()
                        }
                        EvalMode::CycleSql => {
                            oracle.run(item, db, &candidates).chosen_sql
                        }
                    };
                    em.record(em_correct(&chosen, &item.gold_sql));
                    ex.record(ex_correct(db, &chosen, &item.gold_sql));
                    ts.record(ts_correct(
                        session.suite(),
                        &cache,
                        db,
                        &item.db_name,
                        &chosen,
                        &item.gold_sql,
                    ));
                }
                let r = evaluate(
                    &model,
                    &EvalOptions {
                        session: &session,
                        split: Split::Dev,
                        mode,
                        cycle,
                        k: None,
                        compute_ts: true,
                        parallelism: Parallelism::Sequential,
                    },
                );
                let name = model.profile.name;
                assert_eq!(r.em, em.pct(), "{name} {mode:?} EM");
                assert_eq!(r.ex, ex.pct(), "{name} {mode:?} EX");
                assert_eq!(r.ts, ts.pct(), "{name} {mode:?} TS");
            }
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let session = small_session();
        let oracle = CycleSql::new(LoopVerifier::Oracle);
        for (mode, cycle) in
            [(EvalMode::Base, None), (EvalMode::CycleSql, Some(&oracle))]
        {
            for model in
                [SimulatedModel::new(ModelProfile::resdsql_3b()),
                 SimulatedModel::new(ModelProfile::gpt35())]
            {
                let run = |parallelism| {
                    evaluate(
                        &model,
                        &EvalOptions {
                            session: &session,
                            split: Split::Dev,
                            mode,
                            cycle,
                            k: None,
                            compute_ts: true,
                            parallelism,
                        },
                    )
                };
                let seq = run(Parallelism::Sequential);
                let par = run(Parallelism::Fixed(4));
                assert!(
                    seq.same_outcomes(&par),
                    "{} {mode:?}: sequential {seq:?} vs parallel {par:?}",
                    model.profile.name
                );
            }
        }
    }
}
