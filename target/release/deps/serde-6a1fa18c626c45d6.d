/root/repo/target/release/deps/serde-6a1fa18c626c45d6.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6a1fa18c626c45d6.rlib: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6a1fa18c626c45d6.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
