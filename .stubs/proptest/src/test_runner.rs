//! Config type for the proptest stub.

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
