//! # cyclesql-core
//!
//! The CycleSQL framework: the plug-and-play feedback loop over end-to-end
//! NL2SQL models, the verifier training pipeline, evaluation metrics
//! (EM / EX / TS), and experiment drivers that regenerate every table and
//! figure of the paper.
//!
//! ```
//! use cyclesql_core::{CycleSql, LoopVerifier, ex_correct};
//! use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
//! use cyclesql_models::Candidate;
//!
//! let suite = build_spider_suite(
//!     Variant::Spider,
//!     SuiteConfig { seed: 7, train_per_template: 1, eval_per_template: 1 },
//! );
//! let item = &suite.dev[0];
//! let db = suite.database(item);
//! // A wrong candidate followed by the gold one: the oracle-verified loop
//! // walks past the error.
//! let candidates = vec![
//!     Candidate { sql: "SELECT count(*) FROM country WHERE 1 = 0".into(), rank: 0, score: 1.0 },
//!     Candidate { sql: item.gold_sql.clone(), rank: 1, score: 0.9 },
//! ];
//! let cycle = CycleSql::new(LoopVerifier::Oracle);
//! let outcome = cycle.run(item, db, &candidates);
//! assert!(ex_correct(db, &outcome.chosen_sql, &item.gold_sql));
//! ```

#![warn(missing_docs)]

pub mod cycle;
pub mod eval;
pub mod experiments;
pub mod human;
pub mod metrics;
pub mod session;
pub mod training;

pub use cycle::{
    candidate_premise, premise_from_parts, CycleSql, FeedbackKind, LoopOutcome, LoopVerifier,
    PlanSource, RunControls, StageTimings,
};
pub use eval::{
    any_beam_accuracy, evaluate, evaluate_pair, evaluate_science_em, trained_loop, EvalMode,
    EvalOptions, EvalResult, Parallelism,
};
pub use session::{EvalSession, PreparedItem};
pub use human::{
    HumanJudge, InteractiveCycleSql, InteractiveOutcome, SimulatedHuman,
};
pub use metrics::{em_correct, ex_correct, ts_correct, Accuracy, VariantCache, TS_VARIANTS};
pub use training::{collect_training_data, train_verifier, CollectConfig, CollectStats};
