//! Scalar and aggregate kernels shared by the compiled engine and the
//! reference interpreter.
//!
//! Both execution paths call into these functions for binary operators,
//! aggregate folding, and ORDER BY sorting, so arithmetic semantics (and
//! fixes to them) cannot diverge between the paths the differential tests
//! compare.

use crate::error::ExecError;
use crate::value::Value;
use cyclesql_sql::{AggFunc, BinOp, SortOrder};

/// Evaluates a binary operator over two already-evaluated operands.
///
/// Comparison and logic follow SQL three-valued semantics. Arithmetic over
/// two `Int` operands stays in `i64` (checked; a result that overflows
/// falls back to the float path), because routing integer Add/Sub/Mul
/// through `f64` silently rounds results beyond 2^53. Integer division
/// truncates toward zero (SQLite semantics) and division by zero is NULL.
pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    match op {
        BinOp::And => {
            // 3-valued AND.
            Ok(match (l.is_null(), r.is_null()) {
                (false, false) => Value::Bool(l.is_truthy() && r.is_truthy()),
                _ => {
                    if (!l.is_null() && !l.is_truthy()) || (!r.is_null() && !r.is_truthy()) {
                        Value::Bool(false)
                    } else {
                        Value::Null
                    }
                }
            })
        }
        BinOp::Or => Ok(match (l.is_null(), r.is_null()) {
            (false, false) => Value::Bool(l.is_truthy() || r.is_truthy()),
            _ => {
                if (!l.is_null() && l.is_truthy()) || (!r.is_null() && r.is_truthy()) {
                    Value::Bool(true)
                } else {
                    Value::Null
                }
            }
        }),
        BinOp::Eq => Ok(l.sql_eq(r).map(Value::Bool).unwrap_or(Value::Null)),
        BinOp::NotEq => Ok(l.sql_eq(r).map(|b| Value::Bool(!b)).unwrap_or(Value::Null)),
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => Ok(match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }),
        }),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                let exact = match op {
                    BinOp::Add => a.checked_add(*b),
                    BinOp::Sub => a.checked_sub(*b),
                    BinOp::Mul => a.checked_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Ok(Value::Null);
                        }
                        a.checked_div(*b)
                    }
                    _ => unreachable!(),
                };
                if let Some(n) = exact {
                    return Ok(Value::Int(n));
                }
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Ok(Value::Null),
            };
            let result = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            let ints = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_));
            if ints && result.fract() == 0.0 && op != BinOp::Div {
                Ok(Value::Int(result as i64))
            } else if ints && op == BinOp::Div {
                // SQLite integer division truncates.
                Ok(Value::Int(result.trunc() as i64))
            } else {
                Ok(Value::Float(result))
            }
        }
    }
}

/// Folds the collected (non-NULL, DISTINCT-deduplicated) argument values of
/// an aggregate. `COUNT(*)` never reaches here — callers answer it from the
/// group size directly.
///
/// SUM over pure `Int`/`Bool` inputs accumulates in `i64` (checked), so
/// integer sums stay exact past 2^53; it promotes to `Float` only on mixed
/// input or `i64` overflow.
pub(crate) fn fold_agg(func: AggFunc, values: &[Value]) -> Value {
    match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum => {
            if values.is_empty() {
                Value::Null
            } else if values
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Bool(_)))
            {
                let mut acc: i64 = 0;
                let mut overflow = false;
                for v in values {
                    let n = match v {
                        Value::Int(n) => *n,
                        Value::Bool(b) => *b as i64,
                        _ => unreachable!("checked above"),
                    };
                    match acc.checked_add(n) {
                        Some(a) => acc = a,
                        None => {
                            overflow = true;
                            break;
                        }
                    }
                }
                if overflow {
                    Value::Float(values.iter().filter_map(Value::as_f64).sum())
                } else {
                    Value::Int(acc)
                }
            } else {
                Value::Float(values.iter().filter_map(Value::as_f64).sum())
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                let s: f64 = values.iter().filter_map(Value::as_f64).sum();
                Value::Float(s / values.len() as f64)
            }
        }
        AggFunc::Min => values
            .iter()
            .cloned()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .cloned()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
    }
}

/// In-place DISTINCT over aggregate argument values, keyed like GROUP BY.
pub(crate) fn dedup_distinct(values: &mut Vec<Value>) {
    let mut seen = std::collections::HashSet::new();
    values.retain(|v| seen.insert(v.key()));
}

/// Stable sort of output rows by their precomputed ORDER BY keys.
pub(crate) fn sort_by_order_keys<T>(
    rows: &mut [T],
    dirs: &[SortOrder],
    keys: impl Fn(&T) -> &[Value],
) {
    rows.sort_by(|a, b| {
        let (ka, kb) = (keys(a), keys(b));
        for (i, dir) in dirs.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = match dir {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_is_exact_beyond_f64_precision() {
        // 2^53 is the last integer f64 represents exactly; the old f64
        // round-trip lost the +1 below.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            eval_binary(BinOp::Add, &Value::Int(big), &Value::Int(0)).unwrap(),
            Value::Int(big)
        );
        assert_eq!(
            eval_binary(BinOp::Add, &Value::Int(1i64 << 53), &Value::Int(1)).unwrap(),
            Value::Int(big)
        );
        assert_eq!(
            eval_binary(BinOp::Sub, &Value::Int(big), &Value::Int(1)).unwrap(),
            Value::Int(1i64 << 53)
        );
        assert_eq!(
            eval_binary(BinOp::Mul, &Value::Int(big), &Value::Int(1)).unwrap(),
            Value::Int(big)
        );
        // Strict equality on the representation, not sql_eq collapse.
        let v = eval_binary(BinOp::Add, &Value::Int(big), &Value::Int(0)).unwrap();
        assert!(matches!(v, Value::Int(n) if n == big));
    }

    #[test]
    fn int_division_truncates_and_zero_is_null() {
        assert_eq!(
            eval_binary(BinOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_binary(BinOp::Div, &Value::Int(-7), &Value::Int(2)).unwrap(),
            Value::Int(-3)
        );
        assert!(eval_binary(BinOp::Div, &Value::Int(7), &Value::Int(0))
            .unwrap()
            .is_null());
    }

    #[test]
    fn mixed_arithmetic_still_floats() {
        assert!(matches!(
            eval_binary(BinOp::Add, &Value::Int(1), &Value::Float(0.5)).unwrap(),
            Value::Float(_)
        ));
        assert!(matches!(
            eval_binary(BinOp::Add, &Value::Str("2".into()), &Value::Int(1)).unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn int_overflow_falls_back_to_float() {
        let v = eval_binary(BinOp::Add, &Value::Int(i64::MAX), &Value::Int(1)).unwrap();
        assert!(matches!(v, Value::Int(_) | Value::Float(_)));
        // The fallback must not panic and must stay on the numeric rail.
        assert!(v.as_f64().is_some());
    }

    #[test]
    fn sum_accumulates_in_i64() {
        let big = (1i64 << 53) + 1;
        let vals = vec![Value::Int(1i64 << 53), Value::Int(1)];
        assert!(matches!(fold_agg(AggFunc::Sum, &vals), Value::Int(n) if n == big));
        // Bools count as 0/1 integers.
        let vals = vec![Value::Int(big), Value::Bool(true)];
        assert!(matches!(fold_agg(AggFunc::Sum, &vals), Value::Int(n) if n == big + 1));
        // Mixed input promotes to float, as before.
        let vals = vec![Value::Int(1), Value::Float(0.5)];
        assert!(matches!(fold_agg(AggFunc::Sum, &vals), Value::Float(x) if x == 1.5));
        // Overflow promotes to float instead of wrapping.
        let vals = vec![Value::Int(i64::MAX), Value::Int(i64::MAX)];
        assert!(matches!(fold_agg(AggFunc::Sum, &vals), Value::Float(_)));
        // Empty SUM stays NULL.
        assert!(fold_agg(AggFunc::Sum, &[]).is_null());
    }
}
