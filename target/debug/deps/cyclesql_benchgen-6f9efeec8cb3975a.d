/root/repo/target/debug/deps/cyclesql_benchgen-6f9efeec8cb3975a.d: crates/benchgen/src/lib.rs crates/benchgen/src/datagen.rs crates/benchgen/src/domains.rs crates/benchgen/src/suite.rs crates/benchgen/src/templates.rs crates/benchgen/src/variants.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_benchgen-6f9efeec8cb3975a.rmeta: crates/benchgen/src/lib.rs crates/benchgen/src/datagen.rs crates/benchgen/src/domains.rs crates/benchgen/src/suite.rs crates/benchgen/src/templates.rs crates/benchgen/src/variants.rs Cargo.toml

crates/benchgen/src/lib.rs:
crates/benchgen/src/datagen.rs:
crates/benchgen/src/domains.rs:
crates/benchgen/src/suite.rs:
crates/benchgen/src/templates.rs:
crates/benchgen/src/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
