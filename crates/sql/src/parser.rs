//! Recursive-descent parser for the Spider SQL subset.

use crate::ast::*;
use crate::error::SqlError;
use crate::token::{tokenize, Keyword, Token};

/// Parses a SQL string into a [`Query`].
///
/// # Errors
///
/// Returns [`SqlError`] on lexical or syntactic problems.
pub fn parse(input: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat_if(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(SqlError::parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..p.tokens.len().min(p.pos + 4)]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_if(&Token::Keyword(kw))
    }

    fn expect(&mut self, tok: &Token) -> Result<(), SqlError> {
        if self.eat_if(tok) {
            Ok(())
        } else {
            Err(SqlError::parse(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        self.expect(&Token::Keyword(kw))
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            // Aggregate keywords double as identifiers in some schemas
            // (`min` column etc.) — accept them where an identifier is needed.
            Some(Token::Keyword(kw))
                if matches!(
                    kw,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                Ok(match kw {
                    Keyword::Count => "count".into(),
                    Keyword::Sum => "sum".into(),
                    Keyword::Avg => "avg".into(),
                    Keyword::Min => "min".into(),
                    Keyword::Max => "max".into(),
                    _ => unreachable!(),
                })
            }
            other => Err(SqlError::parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // query := body [ORDER BY items] [LIMIT n]
    fn parse_query(&mut self) -> Result<Query, SqlError> {
        let body = self.parse_body()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.eat_kw(Keyword::Desc) {
                    SortOrder::Desc
                } else {
                    self.eat_kw(Keyword::Asc);
                    SortOrder::Asc
                };
                order_by.push(OrderItem { expr, order });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw(Keyword::Limit) {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as u64),
                other => {
                    return Err(SqlError::parse(format!(
                        "expected non-negative integer after LIMIT, found {other:?}"
                    )))
                }
            }
        }
        Ok(Query { body, order_by, limit })
    }

    // body := core (setop core)*   (left-associative)
    fn parse_body(&mut self) -> Result<QueryBody, SqlError> {
        let mut left = QueryBody::Select(self.parse_select_core()?);
        loop {
            let op = match self.peek() {
                Some(Token::Keyword(Keyword::Union)) => SetOp::Union,
                Some(Token::Keyword(Keyword::Intersect)) => SetOp::Intersect,
                Some(Token::Keyword(Keyword::Except)) => SetOp::Except,
                _ => break,
            };
            self.pos += 1;
            let right = QueryBody::Select(self.parse_select_core()?);
            left = QueryBody::SetOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_select_core(&mut self) -> Result<SelectCore, SqlError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut projections = Vec::new();
        loop {
            projections.push(self.parse_select_item()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_kw(Keyword::From)?;
        let from = self.parse_from()?;
        let where_clause =
            if self.eat_kw(Keyword::Where) { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::Having) { Some(self.parse_expr()?) } else { None };
        Ok(SelectCore { distinct, projections, from, where_clause, group_by, having })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_if(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // table.* form
        if let (Some(Token::Ident(name)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Star) {
                let name = name.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedStar(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(name)) = self.peek() {
            // Bare alias (no AS) — only when followed by comma/FROM to avoid
            // ambiguity; Spider rarely uses this but we accept it.
            if matches!(
                self.peek2(),
                Some(Token::Comma) | Some(Token::Keyword(Keyword::From)) | None
            ) {
                let name = name.clone();
                self.pos += 1;
                Some(name)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from(&mut self) -> Result<FromClause, SqlError> {
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.eat_kw(Keyword::Join) || self.eat_kw(Keyword::Inner) {
                // `INNER JOIN` consumes the JOIN keyword too.
                self.eat_kw(Keyword::Join);
                JoinType::Inner
            } else if self.eat_kw(Keyword::Left) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinType::Left
            } else if self.eat_if(&Token::Comma) {
                // Comma join is treated as an inner cross join.
                JoinType::Inner
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            let on = if self.eat_kw(Keyword::On) { Some(self.parse_expr()?) } else { None };
            joins.push(Join { join_type, table, on });
        }
        Ok(FromClause { base, joins })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.expect_ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(a)) = self.peek() {
            let a = a.clone();
            self.pos += 1;
            Some(a)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // Expression precedence (lowest to highest):
    //   OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < add/sub < mul/div < atom
    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        // `expr NOT IN/BETWEEN/LIKE` is a postfix predicate handled in
        // parse_comparison; `NOT EXISTS` and general `NOT expr` start here.
        if self.peek() == Some(&Token::Keyword(Keyword::Not)) {
            if self.peek2() == Some(&Token::Keyword(Keyword::Exists)) {
                self.pos += 2;
                self.expect(&Token::LParen)?;
                let subquery = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Exists { subquery: Box::new(subquery), negated: true });
            }
            if self.peek2() == Some(&Token::LParen) {
                self.pos += 1;
                let inner = self.parse_not()?;
                return Ok(Expr::Not(Box::new(inner)));
            }
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw(Keyword::Exists) {
            self.expect(&Token::LParen)?;
            let subquery = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Exists { subquery: Box::new(subquery), negated: false });
        }
        let left = self.parse_additive()?;
        // postfix predicates
        let negated = self.eat_kw(Keyword::Not);
        if self.eat_kw(Keyword::In) {
            self.expect(&Token::LParen)?;
            if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                let subquery = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern, negated })
                }
                other => {
                    return Err(SqlError::parse(format!(
                        "expected string pattern after LIKE, found {other:?}"
                    )))
                }
            }
        }
        if negated {
            return Err(SqlError::parse("dangling NOT before non-predicate".to_string()));
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_atom()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_atom(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Int(n)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Str(s)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.parse_atom()? {
                    Expr::Literal(Literal::Int(n)) => Ok(Expr::lit(Literal::Int(-n))),
                    Expr::Literal(Literal::Float(x)) => Ok(Expr::lit(Literal::Float(-x))),
                    other => Ok(Expr::binary(BinOp::Sub, Expr::lit(Literal::Int(0)), other)),
                }
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Bool(true)))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Bool(false)))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.pos += 1;
                Ok(Expr::lit(Literal::Null))
            }
            Some(Token::Keyword(kw))
                if matches!(
                    kw,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                // Aggregate call `func(...)`, or an identifier named like an
                // aggregate (column called `min` etc.).
                if self.peek2() == Some(&Token::LParen) {
                    self.pos += 2;
                    let func = match kw {
                        Keyword::Count => AggFunc::Count,
                        Keyword::Sum => AggFunc::Sum,
                        Keyword::Avg => AggFunc::Avg,
                        Keyword::Min => AggFunc::Min,
                        Keyword::Max => AggFunc::Max,
                        _ => unreachable!(),
                    };
                    let distinct = self.eat_kw(Keyword::Distinct);
                    let arg = if self.eat_if(&Token::Star) {
                        FuncArg::Star
                    } else {
                        FuncArg::Expr(Box::new(self.parse_expr()?))
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Agg { func, distinct, arg });
                }
                self.parse_column_ref()
            }
            Some(Token::Ident(_)) => self.parse_column_ref(),
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            other => Err(SqlError::parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn parse_column_ref(&mut self) -> Result<Expr, SqlError> {
        let first = self.expect_ident()?;
        if self.eat_if(&Token::Dot) {
            let column = self.expect_ident()?;
            Ok(Expr::col(ColumnRef { table: Some(first), column }))
        } else {
            Ok(Expr::col(ColumnRef { table: None, column: first }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_count_query() {
        let q = parse("SELECT count(*) FROM Flight WHERE name = 'Airbus A340-300'").unwrap();
        let core = q.leading_select();
        assert_eq!(core.projections.len(), 1);
        assert!(core.has_aggregate());
        assert!(core.where_clause.is_some());
    }

    #[test]
    fn join_with_aliases() {
        let q = parse(
            "SELECT T1.name FROM Country AS T1 JOIN Countrylanguage AS T2 \
             ON T1.code = T2.countrycode WHERE T2.language = 'English'",
        )
        .unwrap();
        let core = q.leading_select();
        assert_eq!(core.from.base.alias.as_deref(), Some("t1"));
        assert_eq!(core.from.joins.len(), 1);
        assert!(core.from.joins[0].on.is_some());
    }

    #[test]
    fn intersect_query() {
        let q = parse(
            "SELECT name FROM a WHERE x = 1 INTERSECT SELECT name FROM a WHERE x = 2",
        )
        .unwrap();
        assert!(q.body.has_set_op());
        assert_eq!(q.body.select_cores().len(), 2);
    }

    #[test]
    fn group_by_having_order_limit() {
        let q = parse(
            "SELECT count(T2.language), T1.name FROM Country AS T1 \
             JOIN Countrylanguage AS T2 ON T1.code = T2.countrycode \
             GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 3",
        )
        .unwrap();
        let core = q.leading_select();
        assert_eq!(core.group_by.len(), 1);
        assert!(core.having.as_ref().unwrap().contains_aggregate());
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.order_by[0].order, SortOrder::Desc);
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn not_in_subquery() {
        let q = parse(
            "SELECT name FROM country WHERE code NOT IN \
             (SELECT countrycode FROM countrylanguage WHERE language = 'English')",
        )
        .unwrap();
        match q.leading_select().where_clause.as_ref().unwrap() {
            Expr::InSubquery { negated, .. } => assert!(negated),
            other => panic!("expected InSubquery, got {other:?}"),
        }
    }

    #[test]
    fn exists_and_not_exists() {
        let q = parse("SELECT a FROM t WHERE EXISTS (SELECT b FROM u)").unwrap();
        assert!(matches!(
            q.leading_select().where_clause,
            Some(Expr::Exists { negated: false, .. })
        ));
        let q = parse("SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM u)").unwrap();
        assert!(matches!(
            q.leading_select().where_clause,
            Some(Expr::Exists { negated: true, .. })
        ));
    }

    #[test]
    fn between_and_like() {
        let q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%'").unwrap();
        let w = q.leading_select().where_clause.as_ref().unwrap();
        let parts = w.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[0], Expr::Between { negated: false, .. }));
        assert!(matches!(parts[1], Expr::Like { negated: false, .. }));
    }

    #[test]
    fn scalar_subquery_comparison() {
        let q = parse("SELECT name FROM t WHERE pop > (SELECT avg(pop) FROM t)").unwrap();
        match q.leading_select().where_clause.as_ref().unwrap() {
            Expr::Binary { op: BinOp::Gt, right, .. } => {
                assert!(matches!(right.as_ref(), Expr::ScalarSubquery(_)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_distinct() {
        let q = parse("SELECT count(DISTINCT name) FROM t").unwrap();
        match &q.leading_select().projections[0] {
            SelectItem::Expr { expr: Expr::Agg { func, distinct, .. }, .. } => {
                assert_eq!(*func, AggFunc::Count);
                assert!(distinct);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qualified_star() {
        let q = parse("SELECT t1.* FROM flight AS t1").unwrap();
        assert!(matches!(&q.leading_select().projections[0], SelectItem::QualifiedStar(t) if t == "t1"));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * c FROM t").unwrap();
        match &q.leading_select().projections[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(right.as_ref(), Expr::Binary { op: BinOp::Mul, .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_and_precedence() {
        let q = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        match q.leading_select().where_clause.as_ref().unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(right.as_ref(), Expr::Binary { op: BinOp::And, .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT a FROM t extra garbage ,,,").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn negative_literal() {
        let q = parse("SELECT a FROM t WHERE x = -5").unwrap();
        match q.leading_select().where_clause.as_ref().unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(right.as_ref(), &Expr::lit(Literal::Int(-5)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_value_list() {
        let q = parse("SELECT a FROM t WHERE x IN (1, 2, 3)").unwrap();
        match q.leading_select().where_clause.as_ref().unwrap() {
            Expr::InList { list, negated, .. } => {
                assert_eq!(list.len(), 3);
                assert!(!negated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_null_predicates() {
        let q = parse("SELECT a FROM t WHERE b IS NULL AND c IS NOT NULL").unwrap();
        let w = q.leading_select().where_clause.as_ref().unwrap();
        let parts = w.conjuncts();
        assert!(matches!(parts[0], Expr::IsNull { negated: false, .. }));
        assert!(matches!(parts[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn left_join() {
        let q = parse("SELECT a FROM t LEFT JOIN u ON t.id = u.id").unwrap();
        assert_eq!(q.leading_select().from.joins[0].join_type, JoinType::Left);
    }

    #[test]
    fn aggregate_named_column() {
        // `max` used as a column name.
        let q = parse("SELECT max FROM stats WHERE max > 10").unwrap();
        assert!(matches!(
            &q.leading_select().projections[0],
            SelectItem::Expr { expr: Expr::Column(c), .. } if c.column == "max"
        ));
    }

    #[test]
    fn nested_subquery_two_levels() {
        let q = parse(
            "SELECT name FROM c WHERE id IN (SELECT cid FROM d WHERE x IN \
             (SELECT y FROM e))",
        )
        .unwrap();
        let subs = q.leading_select().where_clause.as_ref().unwrap().subqueries();
        assert_eq!(subs.len(), 1);
        let inner = subs[0].leading_select().where_clause.as_ref().unwrap().subqueries();
        assert_eq!(inner.len(), 1);
    }
}
