//! The "polishing model" (Section V-B): a fluency pass over generated
//! explanations.
//!
//! The paper uses a 5-shot prompted LLM purely to improve readability for
//! the user study; the semantics must not change. Here the same role is
//! played by a deterministic rule-based rewriter: it fixes capitalization,
//! deduplicates repeated connectives, contracts stilted constructions, and
//! smooths awkward operator phrasings. The substitution is documented in
//! DESIGN.md.

/// Polishes an explanation for readability without changing its semantics.
pub fn polish(text: &str) -> String {
    let mut s = text.to_string();

    // Smooth stilted phrasings. Compound comparison phrases are protected
    // first so the generic "equal to" rule cannot mangle them.
    for (from, to) in [
        ("greater than or equal to", "at least"),
        ("less than or equal to", "at most"),
        ("equal to", "of"),
        (" , ", ", "),
        ("filtered by name of", "filtered by the name"),
        ("That is, for", "For"),
        ("keeping only the top result", "keeping just the best match"),
        (" in total.", " altogether."),
        ("is present (not null)", "is recorded"),
        ("is missing (null)", "is not recorded"),
    ] {
        s = s.replace(from, to);
    }

    // Collapse duplicated connectives introduced by composition.
    while s.contains("and and") {
        s = s.replace("and and", "and");
    }
    while s.contains("  ") {
        s = s.replace("  ", " ");
    }

    // Sentence casing: capitalize after each period.
    let mut out = String::with_capacity(s.len());
    let mut capitalize = true;
    for ch in s.chars() {
        if capitalize && ch.is_ascii_alphabetic() {
            out.extend(ch.to_uppercase());
            capitalize = false;
        } else {
            out.push(ch);
            if ch == '.' {
                capitalize = true;
            } else if !ch.is_whitespace() {
                capitalize = false;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capitalizes_sentences() {
        assert_eq!(polish("hello. world."), "Hello. World.");
    }

    #[test]
    fn collapses_duplicate_connectives() {
        assert_eq!(polish("a and and b"), "A and b");
    }

    #[test]
    fn smooths_operator_phrasing() {
        let p = polish("filtered by name equal to Aruba.");
        assert!(p.contains("the name Aruba"), "{p}");
    }

    #[test]
    fn idempotent_on_polished_text() {
        let once = polish("there are 2 flights in total.");
        let twice = polish(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn preserves_values() {
        let p = polish("the population is 1439200 greater than or equal to 80000.");
        assert!(p.contains("1439200") && p.contains("80000"));
    }
}
