//! The run loop for [`CompiledQuery`]: executes a compiled plan against a
//! database.
//!
//! Per run it (1) resolves each interned table name against the target
//! database once, (2) executes the subquery prologue — every hoisted
//! subquery exactly once, materialized as an [`InProbe`] or a constant —
//! and then (3) streams rows through slots-only expression evaluation.
//! Grouping, DISTINCT, set operations, and hash joins key on
//! [`KeyValue`]s; lineage travels as interned `(table-id, row)` pairs with
//! set-backed ordered dedup and is materialized to [`SourceRef`]s only
//! after LIMIT truncation.

use crate::error::ExecError;
use crate::exec::{ExecOutput, SourceRef};
use crate::ir::{
    row_key, CBody, CCore, CExpr, CProj, CompiledQuery, InProbe, JoinStrategy, RunStats, SrcId,
    SubKind, SubPlan, SubResult,
};
use crate::plan::PlanStep;
use crate::profile::{OpProfile, PlanProfile, Prof, SubProfile};
use crate::result::ResultSet;
use crate::scalar::{dedup_distinct, eval_binary, fold_agg, sort_by_order_keys};
use crate::schema::{ColumnDef, DataType, TableSchema};
use crate::table::{Database, Table};
use crate::value::{KeyValue, Value};
use cyclesql_obs::SpanCtx;
use cyclesql_sql::{AggFunc, SetOp};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

impl CompiledQuery {
    /// Runs the compiled plan, tracking per-row lineage.
    ///
    /// Execution is vectorized: rows stream through the columnar batch
    /// kernels in [`crate::batch`], falling back to the row-at-a-time
    /// interpreter only if the columnar run hits an evaluation error (so
    /// error messages always come from the row engine and stay
    /// bit-identical to the reference interpreter).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if `db` lacks a table the plan references
    /// (running against a database with a different schema) or on run-time
    /// evaluation errors (e.g. a non-COUNT aggregate over `*`).
    pub fn run(&self, db: &Database) -> Result<ExecOutput, ExecError> {
        self.run_opts(db, &ExecOpts::default()).map(|(out, _)| out)
    }

    /// Runs the columnar engine under explicit execution options: batch
    /// size, intra-query worker threads, and a tracing context for the
    /// morsel pool. Results — rows, lineage, stats, and (via
    /// [`CompiledQuery::run_opts_analyzed`]) profile counters — are
    /// bit-identical at every thread count and batch size; only wall time
    /// changes.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_opts(
        &self,
        db: &Database,
        opts: &ExecOpts<'_>,
    ) -> Result<(ExecOutput, RunStats), ExecError> {
        let mut stats = RunStats::default();
        let out = crate::batch::run_columnar(self, db, &mut stats, &mut Prof::Off, opts, &[])?;
        Ok((out, stats))
    }

    /// [`CompiledQuery::run_opts`] with per-operator instrumentation.
    /// Counters are summed across morsels in morsel-index order, so the
    /// profile is identical to a single-threaded run's (timings aside).
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_opts_analyzed(
        &self,
        db: &Database,
        opts: &ExecOpts<'_>,
    ) -> Result<(ExecOutput, PlanProfile), ExecError> {
        let mut stats = RunStats::default();
        let mut prof = Prof::On(Box::default());
        let t = Instant::now();
        let out = crate::batch::run_columnar(self, db, &mut stats, &mut prof, opts, &[])?;
        let total_ns = t.elapsed().as_nanos() as u64;
        let Prof::On(mut profile) = prof else {
            unreachable!("profiling stays on for the whole run")
        };
        profile.total_ns = total_ns;
        profile.rows_out = out.result.rows.len();
        Ok((out, *profile))
    }

    /// Runs the columnar engine with an explicit batch size (rows per
    /// chunk, clamped to at least 1). Results are identical for every
    /// batch size; this exists so tests can sweep chunk boundaries and
    /// benchmarks can explore the batch-size axis.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_batched(
        &self,
        db: &Database,
        rows_per_batch: usize,
    ) -> Result<ExecOutput, ExecError> {
        let opts = ExecOpts {
            batch_rows: rows_per_batch,
            ..ExecOpts::default()
        };
        self.run_opts(db, &opts).map(|(out, _)| out)
    }

    /// Runs the compiled plan through the row-at-a-time interpreter,
    /// bypassing the columnar kernels. Kept public as the differential
    /// anchor for tests and benchmarks.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_rowwise(&self, db: &Database) -> Result<ExecOutput, ExecError> {
        let mut stats = RunStats::default();
        self.run_inner(db, &mut stats, &mut Prof::Off)
    }

    /// Runs the compiled plan, discarding lineage.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_result(&self, db: &Database) -> Result<ResultSet, ExecError> {
        self.run(db).map(|o| o.result)
    }

    /// Runs the compiled plan and reports execution statistics (how many
    /// hoisted subqueries were executed, each exactly once).
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_with_stats(&self, db: &Database) -> Result<(ExecOutput, RunStats), ExecError> {
        self.run_opts(db, &ExecOpts::default())
    }

    /// Runs the compiled plan with per-operator instrumentation: rows
    /// in/out, probe and comparison counts, hash-index sizes, prologue
    /// subquery timings, and per-operator wall time — the data behind
    /// [`crate::plan::describe_plan_analyze`]. Exactly one execution; the
    /// result is the same one [`CompiledQuery::run`] would produce.
    /// Columnar batches accumulate each operator's counters across chunks,
    /// so the profile is independent of the batch size.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_analyzed(&self, db: &Database) -> Result<(ExecOutput, PlanProfile), ExecError> {
        self.run_opts_analyzed(db, &ExecOpts::default())
    }

    /// [`CompiledQuery::run_analyzed`] pinned to the row engine, for
    /// counter-parity tests and the benchmark's row axis.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_rowwise_analyzed(
        &self,
        db: &Database,
    ) -> Result<(ExecOutput, PlanProfile), ExecError> {
        let mut stats = RunStats::default();
        let mut prof = Prof::On(Box::default());
        let t = Instant::now();
        let out = self.run_inner(db, &mut stats, &mut prof)?;
        let total_ns = t.elapsed().as_nanos() as u64;
        let Prof::On(mut profile) = prof else {
            unreachable!("profiling stays on for the whole run")
        };
        profile.total_ns = total_ns;
        profile.rows_out = out.result.rows.len();
        Ok((out, *profile))
    }

    /// [`CompiledQuery::run_analyzed`] with an explicit batch size; the
    /// chunk-sweep counter tests drive this.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::run`].
    pub fn run_batched_analyzed(
        &self,
        db: &Database,
        rows_per_batch: usize,
    ) -> Result<(ExecOutput, PlanProfile), ExecError> {
        let opts = ExecOpts {
            batch_rows: rows_per_batch,
            ..ExecOpts::default()
        };
        self.run_opts_analyzed(db, &opts)
    }

    pub(crate) fn run_inner(
        &self,
        db: &Database,
        stats: &mut RunStats,
        prof: &mut Prof,
    ) -> Result<ExecOutput, ExecError> {
        self.run_extra(db, stats, prof, &[])
    }

    /// [`CompiledQuery::run_inner`] with enclosing-scope CTE
    /// materializations visible to name resolution — the entry point for
    /// CTE bodies and hoisted subqueries that scan an outer `WITH` table.
    /// This plan's own CTEs materialize first (before the subquery
    /// prologue, matching the reference interpreter's bodies-before-main
    /// evaluation order), then the main body runs with the combined scope.
    pub(crate) fn run_extra(
        &self,
        db: &Database,
        stats: &mut RunStats,
        prof: &mut Prof,
        extra: &[&CteMat],
    ) -> Result<ExecOutput, ExecError> {
        let mats = materialize_ctes(self, db, stats, prof, extra, None)?;
        let avail: Vec<&CteMat> = extra.iter().copied().chain(mats.iter()).collect();
        let ctx = RunCtx::prepare(self, db, stats, prof, None, &avail)?;
        let (columns, rows) = exec_cbody(&ctx, &self.body, prof)?;
        finish_run(self, &columns, rows, prof, &avail)
    }
}

/// One materialized `WITH` definition: the result as a scannable
/// [`Table`] plus each result row's base-table lineage. Bodies that scan
/// the CTE record pseudo-references `(cte-id, row)`; [`finish_run`]
/// splices those into the stored base lineage at the output boundary.
pub(crate) struct CteMat {
    /// Declared CTE name (verbatim, as interned by the compiler).
    pub(crate) name: String,
    /// The materialized rows, scannable like any base table.
    pub(crate) table: Table,
    /// Per-row base-table lineage, parallel to `table.rows`.
    pub(crate) lineage: Vec<Vec<SourceRef>>,
}

/// Materializes a plan's `WITH` definitions in declaration order, each
/// body seeing the enclosing scope (`extra`) plus every earlier sibling —
/// exactly the visibility the compiler resolved against. Each body runs
/// once per run (counted in [`RunStats::cte_runs`]) on the engine
/// `prologue_batch` selects, like the subquery prologue.
pub(crate) fn materialize_ctes(
    plan: &CompiledQuery,
    db: &Database,
    stats: &mut RunStats,
    prof: &mut Prof,
    extra: &[&CteMat],
    prologue_batch: Option<usize>,
) -> Result<Vec<CteMat>, ExecError> {
    let mut mats: Vec<CteMat> = Vec::with_capacity(plan.ctes.len());
    for cte in &plan.ctes {
        let avail: Vec<&CteMat> = extra.iter().copied().chain(mats.iter()).collect();
        stats.cte_runs += 1;
        let t = prof.start();
        let out = match prologue_batch {
            Some(batch_rows) => {
                let opts = ExecOpts {
                    batch_rows,
                    ..ExecOpts::default()
                };
                crate::batch::run_columnar(&cte.plan, db, stats, &mut Prof::Off, &opts, &avail)?
            }
            None => cte.plan.run_extra(db, stats, &mut Prof::Off, &avail)?,
        };
        if let Some(t) = t {
            prof.push_sub(SubProfile {
                index: 0, // assigned from push order
                kind: "cte",
                rows: out.result.rows.len(),
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
        // Declared types are not tracked for CTE outputs (values carry
        // their own runtime types); Text is a display-only placeholder.
        let schema = TableSchema::new(
            &cte.name,
            cte.columns
                .iter()
                .map(|c| ColumnDef::new(c, DataType::Text))
                .collect(),
        );
        let mut table = Table::new(schema);
        for row in out.result.rows {
            table.push_row(row);
        }
        mats.push(CteMat {
            name: cte.name.clone(),
            table,
            lineage: out.lineage,
        });
    }
    Ok(mats)
}

/// Default rows-per-chunk for the columnar engine: large enough to
/// amortize per-batch dispatch, small enough to keep a chunk's id columns
/// and evaluated columns cache-resident.
pub(crate) const DEFAULT_BATCH_ROWS: usize = 1024;

/// Execution options for the columnar engine: batch size, intra-query
/// parallelism, and a tracing context for the morsel worker pool.
///
/// A morsel is one batch-sized range of base-table row ids; with
/// `threads > 1` morsels are claimed by a work-stealing pool and their
/// outputs merged in morsel-index order, so every observable output (rows,
/// lineage order, [`RunStats`], EXPLAIN ANALYZE counters, errors) is
/// bit-identical to a single-threaded run at the same batch size.
#[derive(Clone, Copy)]
pub struct ExecOpts<'a> {
    /// Rows per morsel/chunk (clamped to at least 1).
    pub batch_rows: usize,
    /// Maximum intra-query worker threads. `0` and `1` both mean
    /// single-threaded execution on the calling thread; the pool never
    /// spawns more workers than there are morsels.
    pub threads: usize,
    /// Tracing context: with parallelism active and tracing enabled, each
    /// pool worker emits one `morsels` child span (worker index, morsels
    /// claimed, rows produced). Disabled contexts cost nothing.
    pub span: SpanCtx<'a>,
}

impl Default for ExecOpts<'_> {
    fn default() -> Self {
        ExecOpts {
            batch_rows: DEFAULT_BATCH_ROWS,
            threads: 1,
            span: SpanCtx::none(),
        }
    }
}

/// The shared tail of both engines: ORDER BY, LIMIT, and lineage
/// materialization, with their profile entries. Interned lineage ids are
/// resolved to shared table-name handles only for rows that survive
/// LIMIT. With CTEs in scope, pseudo-references into a materialized CTE
/// expand here into that CTE row's own base-table lineage
/// (order-preserving, first occurrence wins).
pub(crate) fn finish_run(
    plan: &CompiledQuery,
    columns: &Arc<[String]>,
    mut rows: Vec<COutRow>,
    prof: &mut Prof,
    ctes: &[&CteMat],
) -> Result<ExecOutput, ExecError> {
    if !plan.order_dirs.is_empty() {
        let t = prof.start();
        let n = rows.len();
        sort_by_order_keys(&mut rows, &plan.order_dirs, |r: &COutRow| &r.order_keys);
        if let Some(t) = t {
            prof.push_op(OpProfile {
                step: PlanStep::Sort {
                    keys: plan.order_dirs.len(),
                },
                rows_in: n,
                rows_out: n,
                comparisons: 0,
                hash_entries: 0,
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
    }
    if let Some(n) = plan.limit {
        let before = rows.len();
        rows.truncate(n as usize);
        if prof.enabled() {
            prof.push_op(OpProfile {
                step: PlanStep::Limit { n },
                rows_in: before,
                rows_out: rows.len(),
                comparisons: 0,
                hash_entries: 0,
                elapsed_ns: 0,
            });
        }
    }
    let arcs: Vec<Arc<str>> = plan.tables.iter().map(|t| Arc::from(t.as_str())).collect();
    let mut result_rows = Vec::with_capacity(rows.len());
    let mut lineage = Vec::with_capacity(rows.len());
    if ctes.is_empty() {
        for r in rows {
            result_rows.push(r.values);
            lineage.push(
                r.lineage
                    .into_iter()
                    .map(|(t, row)| SourceRef {
                        table: Arc::clone(&arcs[t as usize]),
                        row,
                    })
                    .collect(),
            );
        }
    } else {
        // Which interned ids are CTEs (latest declaration shadows, like
        // name resolution in `RunCtx::prepare`).
        let mat_of: Vec<Option<&CteMat>> = plan
            .tables
            .iter()
            .map(|t| ctes.iter().rev().find(|m| m.name == *t).copied())
            .collect();
        for r in rows {
            result_rows.push(r.values);
            let mut out: Vec<SourceRef> = Vec::with_capacity(r.lineage.len());
            for (t, row) in r.lineage {
                match mat_of[t as usize] {
                    Some(mat) => {
                        for src in &mat.lineage[row] {
                            if !out.contains(src) {
                                out.push(src.clone());
                            }
                        }
                    }
                    None => {
                        let src = SourceRef {
                            table: Arc::clone(&arcs[t as usize]),
                            row,
                        };
                        if !out.contains(&src) {
                            out.push(src);
                        }
                    }
                }
            }
            lineage.push(out);
        }
    }
    Ok(ExecOutput {
        result: ResultSet {
            columns: columns.to_vec(),
            rows: result_rows,
        },
        lineage,
    })
}

/// Per-run state: resolved tables and prologue results. Shared between
/// the row interpreter here and the columnar kernels in [`crate::batch`],
/// so both engines resolve tables and run the subquery prologue
/// identically.
pub(crate) struct RunCtx<'a> {
    pub(crate) tables: Vec<&'a Table>,
    pub(crate) subs: Vec<SubResult>,
}

impl<'a> RunCtx<'a> {
    /// `prologue_batch` selects the engine for the subquery prologue:
    /// `Some(batch_rows)` runs each hoisted subquery through the columnar
    /// batch kernels (the columnar outer run passes its own batch size so
    /// chunk-boundary sweeps cover the prologue too), `None` keeps it on
    /// the row interpreter (the row engine stays a pure row-wise anchor).
    pub(crate) fn prepare(
        plan: &CompiledQuery,
        db: &'a Database,
        stats: &mut RunStats,
        prof: &mut Prof,
        prologue_batch: Option<usize>,
        extra: &[&'a CteMat],
    ) -> Result<Self, ExecError> {
        let tables = plan
            .tables
            .iter()
            .map(|name| {
                // Materialized CTEs shadow schema tables; latest
                // declaration wins, matching compile-time scoping.
                extra
                    .iter()
                    .rev()
                    .find(|m| m.name == *name)
                    .map(|m| &m.table)
                    .or_else(|| db.table_exact(name))
                    .ok_or_else(|| ExecError::new(format!("unknown table {name}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut subs = Vec::with_capacity(plan.subs.len());
        for sub in &plan.subs {
            subs.push(run_prologue_step(sub, db, stats, prof, prologue_batch, extra)?);
        }
        Ok(RunCtx { tables, subs })
    }
}

/// Executes one hoisted subquery — the only place subqueries run, once per
/// run regardless of outer cardinality. Profiled runs record each step's
/// result size and wall time as a [`SubProfile`]; the subquery's own
/// operators are not expanded into the outer profile.
fn run_prologue_step(
    sub: &SubPlan,
    db: &Database,
    stats: &mut RunStats,
    prof: &mut Prof,
    prologue_batch: Option<usize>,
    extra: &[&CteMat],
) -> Result<SubResult, ExecError> {
    stats.subquery_runs += 1;
    let t = prof.start();
    let result = match prologue_batch {
        // Vectorized prologue: the subplan streams through the same batch
        // kernels as the outer query (single-threaded — prologue plans run
        // once and are rarely scan-bound). `run_columnar` accumulates onto
        // the caller's stats and falls back to the row interpreter on any
        // evaluation error, so results, `subquery_runs`, and error messages
        // are identical to a row-wise prologue. Enclosing CTEs stay in
        // scope: the reference interpreter runs subqueries against the
        // shadow database that already holds them.
        Some(batch_rows) => {
            let opts = ExecOpts {
                batch_rows,
                ..ExecOpts::default()
            };
            crate::batch::run_columnar(&sub.plan, db, stats, &mut Prof::Off, &opts, extra)?.result
        }
        None => sub.plan.run_extra(db, stats, &mut Prof::Off, extra)?.result,
    };
    if let Some(t) = t {
        prof.push_sub(SubProfile {
            index: 0, // assigned from push order
            kind: match &sub.kind {
                SubKind::InSet => "in-set",
                SubKind::Exists { .. } => "exists",
                SubKind::Scalar => "scalar",
            },
            rows: result.rows.len(),
            elapsed_ns: t.elapsed().as_nanos() as u64,
        });
    }
    Ok(match &sub.kind {
        SubKind::InSet => {
            let mut probe = InProbe::default();
            for row in &result.rows {
                if let Some(v) = row.first() {
                    probe.insert(v);
                }
            }
            SubResult::Probe(probe)
        }
        SubKind::Exists { negated } => SubResult::Const(Value::Bool(result.is_empty() == *negated)),
        SubKind::Scalar => SubResult::Const(
            result
                .rows
                .first()
                .and_then(|r| r.first().cloned())
                .unwrap_or(Value::Null),
        ),
    })
}

/// One joined row mid-pipeline: values plus interned lineage.
#[derive(Debug, Clone)]
struct CWorkRow {
    values: Vec<Value>,
    lineage: Vec<SrcId>,
}

/// One output row mid-pipeline — also produced by the columnar kernels,
/// which late-materialize values into this shape just before the shared
/// sort/limit tail.
#[derive(Debug, Clone)]
pub(crate) struct COutRow {
    pub(crate) values: Vec<Value>,
    pub(crate) lineage: Vec<SrcId>,
    pub(crate) order_keys: Vec<Value>,
}

/// Positional value access shared by full work rows and join candidates,
/// so predicate evaluation never needs a materialized candidate row.
trait SlotVals {
    fn slot(&self, i: usize) -> &Value;
}

impl SlotVals for CWorkRow {
    #[inline]
    fn slot(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

/// A nested-loop join candidate: the left row and a borrowed right row.
/// ON predicates evaluate against this view; only candidates that pass
/// are assembled into owned [`CWorkRow`]s.
struct JoinCand<'a> {
    left: &'a CWorkRow,
    right: &'a [Value],
}

impl SlotVals for JoinCand<'_> {
    #[inline]
    fn slot(&self, i: usize) -> &Value {
        let split = self.left.values.len();
        if i < split {
            &self.left.values[i]
        } else {
            &self.right[i - split]
        }
    }
}

fn exec_cbody(
    ctx: &RunCtx<'_>,
    body: &CBody,
    prof: &mut Prof,
) -> Result<(Arc<[String]>, Vec<COutRow>), ExecError> {
    match body {
        CBody::Select(core) => exec_ccore(ctx, core, prof),
        CBody::SetOp { op, left, right } => {
            let (columns, l) = exec_cbody(ctx, left, prof)?;
            // Reserve the set-op marker between the branches (matching
            // describe order); its measurements exist only after the merge.
            let marker = prof.enabled().then(|| {
                prof.push_op(OpProfile {
                    step: PlanStep::SetOp {
                        op: op.keyword().to_string(),
                    },
                    rows_in: 0,
                    rows_out: 0,
                    comparisons: 0,
                    hash_entries: 0,
                    elapsed_ns: 0,
                })
            });
            let (_, r) = exec_cbody(ctx, right, prof)?;
            let t = prof.start();
            let rows_in = l.len() + r.len();
            let merged = apply_set_op(*op, l, r);
            if let (Some(marker), Some(t)) = (marker, t) {
                prof.patch_op(
                    marker,
                    OpProfile {
                        step: PlanStep::SetOp {
                            op: op.keyword().to_string(),
                        },
                        rows_in,
                        rows_out: merged.len(),
                        comparisons: 0,
                        hash_entries: 0,
                        elapsed_ns: t.elapsed().as_nanos() as u64,
                    },
                );
            }
            Ok((columns, merged))
        }
    }
}

/// Set-operation dedup on [`KeyValue`] row keys, computed once per row.
/// Shared with the columnar engine, which merges branch outputs here too.
pub(crate) fn apply_set_op(op: SetOp, l: Vec<COutRow>, r: Vec<COutRow>) -> Vec<COutRow> {
    let key = |row: &COutRow| row_key(&row.values);
    let mut out = Vec::new();
    let mut seen: HashSet<Vec<KeyValue>> = HashSet::new();
    match op {
        SetOp::Union => {
            for row in l.into_iter().chain(r) {
                let k = key(&row);
                if seen.insert(k) {
                    out.push(row);
                }
            }
        }
        SetOp::Intersect => {
            // First matching right row per key, for the lineage merge.
            let mut right_first: HashMap<Vec<KeyValue>, usize> = HashMap::new();
            for (i, row) in r.iter().enumerate() {
                right_first.entry(key(row)).or_insert(i);
            }
            for mut row in l.into_iter() {
                let k = key(&row);
                if let Some(&first) = right_first.get(&k) {
                    if seen.insert(k) {
                        // Merge lineage from one matching right row so the
                        // provenance spans both branches; ordered dedup via
                        // a set rather than O(n²) scans.
                        let mut present: HashSet<SrcId> = row.lineage.iter().copied().collect();
                        for &src in &r[first].lineage {
                            if present.insert(src) {
                                row.lineage.push(src);
                            }
                        }
                        out.push(row);
                    }
                }
            }
        }
        SetOp::Except => {
            let right_keys: HashSet<Vec<KeyValue>> = r.iter().map(key).collect();
            for row in l.into_iter() {
                let k = key(&row);
                if !right_keys.contains(&k) && seen.insert(k) {
                    out.push(row);
                }
            }
        }
    }
    out
}

fn exec_ccore(
    ctx: &RunCtx<'_>,
    core: &CCore,
    prof: &mut Prof,
) -> Result<(Arc<[String]>, Vec<COutRow>), ExecError> {
    let mut work = build_working_set(ctx, core, prof)?;

    if let Some(pred) = &core.filter {
        let t = prof.start();
        let rows_in = work.len();
        let mut kept = Vec::with_capacity(work.len());
        for row in work.into_iter() {
            if ceval(pred, ctx, &row)?.is_truthy() {
                kept.push(row);
            }
        }
        work = kept;
        if let Some(t) = t {
            prof.push_op(OpProfile {
                step: PlanStep::Filter {
                    predicate: core.filter_display.clone().unwrap_or_default(),
                },
                rows_in,
                rows_out: work.len(),
                comparisons: rows_in,
                hash_entries: 0,
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
    }

    let agg_t = prof.start();
    let agg_rows_in = work.len();
    let mut out_rows: Vec<COutRow> = Vec::new();
    if core.grouped {
        let groups = group_rows(&core.group_by, ctx, work)?;
        for group in groups {
            if let Some(h) = &core.having {
                if !ceval_in_group(h, ctx, &group)?.is_truthy() {
                    continue;
                }
            }
            let mut values = Vec::new();
            for item in &core.projections {
                project_item(item, ctx, ProjCtx::Group(&group), &mut values)?;
            }
            let mut order_keys = Vec::with_capacity(core.order_exprs.len());
            for o in &core.order_exprs {
                order_keys.push(ceval_in_group(o, ctx, &group)?);
            }
            // Ordered union of the group's lineage, set-backed.
            let mut lineage: Vec<SrcId> = Vec::new();
            let mut present: HashSet<SrcId> = HashSet::new();
            for r in &group {
                for &src in &r.lineage {
                    if present.insert(src) {
                        lineage.push(src);
                    }
                }
            }
            out_rows.push(COutRow {
                values,
                lineage,
                order_keys,
            });
        }
    } else {
        for row in work {
            let mut values = Vec::new();
            for item in &core.projections {
                project_item(item, ctx, ProjCtx::Row(&row), &mut values)?;
            }
            let mut order_keys = Vec::with_capacity(core.order_exprs.len());
            for o in &core.order_exprs {
                order_keys.push(ceval(o, ctx, &row)?);
            }
            out_rows.push(COutRow {
                values,
                lineage: row.lineage,
                order_keys,
            });
        }
    }

    if core.grouped {
        if let Some(t) = agg_t {
            prof.push_op(OpProfile {
                step: PlanStep::Aggregate {
                    group_keys: core.group_by.len(),
                    having: core.having.is_some(),
                },
                rows_in: agg_rows_in,
                rows_out: out_rows.len(),
                comparisons: 0,
                hash_entries: 0,
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
    }

    if core.distinct {
        let t = prof.start();
        let rows_in = out_rows.len();
        let mut seen: HashSet<Vec<KeyValue>> = HashSet::new();
        out_rows.retain(|r| seen.insert(row_key(&r.values)));
        if let Some(t) = t {
            prof.push_op(OpProfile {
                step: PlanStep::Distinct,
                rows_in,
                rows_out: out_rows.len(),
                comparisons: 0,
                hash_entries: 0,
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
    }

    Ok((Arc::clone(&core.columns), out_rows))
}

fn build_working_set(
    ctx: &RunCtx<'_>,
    core: &CCore,
    prof: &mut Prof,
) -> Result<Vec<CWorkRow>, ExecError> {
    let base = ctx.tables[core.base as usize];
    let t = prof.start();
    let mut work: Vec<CWorkRow> = base
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| CWorkRow {
            values: r.clone(),
            lineage: vec![(core.base, i)],
        })
        .collect();
    if let Some(t) = t {
        prof.push_op(OpProfile {
            step: PlanStep::Scan {
                table: base.schema.name.clone(),
                rows: base.len(),
            },
            rows_in: base.len(),
            rows_out: work.len(),
            comparisons: 0,
            hash_entries: 0,
            elapsed_ns: t.elapsed().as_nanos() as u64,
        });
    }

    // Running width of the joined prefix, for RIGHT/FULL pad rows (the
    // working set may be empty, so the width cannot be read off a row).
    let mut left_width = base.schema.columns.len();
    for join in &core.joins {
        let right = ctx.tables[join.table as usize];
        let t = prof.start();
        let rows_in = work.len();
        let mut hash_entries = 0usize;
        let mut comparisons = 0usize;
        let mut joined = Vec::new();
        let (pad_l, pad_r) = join.join_type.pads();
        // Which right rows matched at least one left row; only tracked
        // when this flavor pads the right side.
        let mut matched_right = vec![false; if pad_r { right.rows.len() } else { 0 }];
        match &join.strategy {
            JoinStrategy::Hash {
                left_slot,
                right_col,
            } => {
                // NULL keys never match (3VL), mirroring nested-loop
                // sql_eq — a NULL-key right row is never indexed, so under
                // RIGHT/FULL it pads by construction.
                let mut index: HashMap<KeyValue, Vec<usize>> = HashMap::new();
                for (ri, right_row) in right.rows.iter().enumerate() {
                    let k = &right_row[*right_col];
                    if !k.is_null() {
                        index.entry(k.key()).or_default().push(ri);
                        hash_entries += 1;
                    }
                }
                comparisons = work.len();
                for left_row in &work {
                    let k = &left_row.values[*left_slot];
                    let matches: &[usize] = if k.is_null() {
                        &[]
                    } else {
                        index.get(&k.key()).map(|v| v.as_slice()).unwrap_or(&[])
                    };
                    for &ri in matches {
                        if pad_r {
                            matched_right[ri] = true;
                        }
                        joined.push(join_rows(left_row, &right.rows[ri], join.table, ri));
                    }
                    if matches.is_empty() && pad_l {
                        joined.push(pad_left(left_row, join.right_width));
                    }
                }
            }
            JoinStrategy::Loop { on } => {
                for left_row in &work {
                    let mut matched = false;
                    for (ri, right_row) in right.rows.iter().enumerate() {
                        // Evaluate ON against a borrowed candidate view;
                        // only matches are assembled into owned rows.
                        let keep = match on {
                            Some(on) => {
                                comparisons += 1;
                                let cand = JoinCand {
                                    left: left_row,
                                    right: right_row,
                                };
                                ceval(on, ctx, &cand)?.is_truthy()
                            }
                            None => true,
                        };
                        if keep {
                            matched = true;
                            if pad_r {
                                matched_right[ri] = true;
                            }
                            joined.push(join_rows(left_row, right_row, join.table, ri));
                        }
                    }
                    if !matched && pad_l {
                        joined.push(pad_left(left_row, join.right_width));
                    }
                }
            }
        }
        // Unmatched right rows append after every left-driven output, in
        // right-row order — the canonical order all three engines share.
        if pad_r {
            for (ri, right_row) in right.rows.iter().enumerate() {
                if !matched_right[ri] {
                    joined.push(pad_right(left_width, right_row, join.table, ri));
                }
            }
        }
        work = joined;
        left_width += join.right_width;
        if let Some(t) = t {
            let table = right.schema.name.clone();
            let rows = right.len();
            let step = match &join.strategy {
                JoinStrategy::Hash { .. } => PlanStep::HashJoin {
                    table,
                    rows,
                    on: join.on_display.clone().unwrap_or_default(),
                },
                JoinStrategy::Loop { .. } => PlanStep::NestedLoopJoin {
                    table,
                    rows,
                    on: join.on_display.clone(),
                },
            };
            prof.push_op(OpProfile {
                step,
                rows_in,
                rows_out: work.len(),
                comparisons,
                hash_entries,
                elapsed_ns: t.elapsed().as_nanos() as u64,
            });
        }
    }
    Ok(work)
}

/// Assembles a kept join output row with exact-capacity allocations.
fn join_rows(left: &CWorkRow, right_row: &[Value], table: u32, ri: usize) -> CWorkRow {
    let mut values = Vec::with_capacity(left.values.len() + right_row.len());
    values.extend_from_slice(&left.values);
    values.extend_from_slice(right_row);
    let mut lineage = Vec::with_capacity(left.lineage.len() + 1);
    lineage.extend_from_slice(&left.lineage);
    lineage.push((table, ri));
    CWorkRow { values, lineage }
}

/// A LEFT/FULL pad row for an unmatched left row: NULLs for the right
/// side, no right lineage entry.
fn pad_left(left: &CWorkRow, right_width: usize) -> CWorkRow {
    let mut values = Vec::with_capacity(left.values.len() + right_width);
    values.extend_from_slice(&left.values);
    values.extend(std::iter::repeat_n(Value::Null, right_width));
    CWorkRow {
        values,
        lineage: left.lineage.clone(),
    }
}

/// A RIGHT/FULL pad row for an unmatched right row: NULLs for the whole
/// joined prefix, lineage anchored on the right row alone.
fn pad_right(left_width: usize, right_row: &[Value], table: u32, ri: usize) -> CWorkRow {
    let mut values = Vec::with_capacity(left_width + right_row.len());
    values.extend(std::iter::repeat_n(Value::Null, left_width));
    values.extend_from_slice(right_row);
    CWorkRow {
        values,
        lineage: vec![(table, ri)],
    }
}

enum ProjCtx<'a> {
    Row(&'a CWorkRow),
    Group(&'a [CWorkRow]),
}

fn project_item(
    item: &CProj,
    ctx: &RunCtx<'_>,
    pctx: ProjCtx<'_>,
    out: &mut Vec<Value>,
) -> Result<(), ExecError> {
    match item {
        CProj::Slots(idxs) => {
            let rep: Option<&CWorkRow> = match &pctx {
                ProjCtx::Row(r) => Some(r),
                ProjCtx::Group(g) => g.first(),
            };
            match rep {
                Some(r) => out.extend(idxs.iter().map(|&i| r.values[i].clone())),
                // Empty group (aggregate over no rows): NULL-pad, matching
                // the reference interpreter.
                None => out.extend(std::iter::repeat_n(Value::Null, idxs.len())),
            }
        }
        CProj::Expr(e) => {
            let v = match pctx {
                ProjCtx::Row(r) => ceval(e, ctx, r)?,
                ProjCtx::Group(g) => ceval_in_group(e, ctx, g)?,
            };
            out.push(v);
        }
    }
    Ok(())
}

/// Order-preserving grouping on [`KeyValue`] keys; rows are moved into
/// their groups, not cloned.
fn group_rows(
    group_by: &[CExpr],
    ctx: &RunCtx<'_>,
    work: Vec<CWorkRow>,
) -> Result<Vec<Vec<CWorkRow>>, ExecError> {
    if group_by.is_empty() {
        // Single group over the full input — even if empty (so `count(*)`
        // over an empty table yields 0).
        return Ok(vec![work]);
    }
    let mut index: HashMap<Vec<KeyValue>, usize> = HashMap::new();
    let mut groups: Vec<Vec<CWorkRow>> = Vec::new();
    for row in work {
        let mut key = Vec::with_capacity(group_by.len());
        for g in group_by {
            key.push(ceval(g, ctx, &row)?.key());
        }
        let slot = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(row);
    }
    Ok(groups)
}

// ---------------------------------------------------------------------------
// Expression evaluation — slots and prologue lookups only, no name
// resolution and no subquery execution.
// ---------------------------------------------------------------------------

fn ceval<S: SlotVals>(e: &CExpr, ctx: &RunCtx<'_>, row: &S) -> Result<Value, ExecError> {
    match e {
        CExpr::Slot(i) => Ok(row.slot(*i).clone()),
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Binary { op, left, right } => {
            eval_binary(*op, &ceval(left, ctx, row)?, &ceval(right, ctx, row)?)
        }
        CExpr::Not(inner) => {
            let v = ceval(inner, ctx, row)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        CExpr::Agg { .. } => Err(ExecError::new(
            "aggregate used outside of an aggregate context",
        )),
        CExpr::InProbeRef { expr, sub, negated } => {
            let needle = ceval(expr, ctx, row)?;
            let found = match &ctx.subs[*sub] {
                SubResult::Probe(p) => p.contains(&needle),
                SubResult::Const(_) => {
                    return Err(ExecError::new("internal: IN site bound to a constant"))
                }
            };
            Ok(Value::Bool(found != *negated))
        }
        CExpr::SubConst { sub } => match &ctx.subs[*sub] {
            SubResult::Const(v) => Ok(v.clone()),
            SubResult::Probe(_) => Err(ExecError::new("internal: constant site bound to a probe")),
        },
        CExpr::InConstList {
            expr,
            probe,
            negated,
        } => {
            let needle = ceval(expr, ctx, row)?;
            Ok(Value::Bool(probe.contains(&needle) != *negated))
        }
        CExpr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = ceval(expr, ctx, row)?;
            let mut found = false;
            for item in list {
                let v = ceval(item, ctx, row)?;
                if needle.sql_eq(&v) == Some(true) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        CExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = ceval(expr, ctx, row)?;
            let lo = ceval(low, ctx, row)?;
            let hi = ceval(high, ctx, row)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        CExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = ceval(expr, ctx, row)?;
            match v.sql_like(pattern) {
                Some(m) => Ok(Value::Bool(m != *negated)),
                None => Ok(Value::Null),
            }
        }
        CExpr::IsNull { expr, negated } => {
            let v = ceval(expr, ctx, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        CExpr::Case {
            operand,
            branches,
            else_,
        } => {
            // Lazy: operand once, WHENs until the first hit, one THEN.
            let opv = operand.as_ref().map(|o| ceval(o, ctx, row)).transpose()?;
            for (when, then) in branches {
                let w = ceval(when, ctx, row)?;
                let hit = match &opv {
                    Some(op) => op.sql_eq(&w) == Some(true),
                    None => w.is_truthy(),
                };
                if hit {
                    return ceval(then, ctx, row);
                }
            }
            match else_ {
                Some(e) => ceval(e, ctx, row),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Grouped evaluation: aggregates fold over the group; bare slots take the
/// first row's value (SQLite-style).
fn ceval_in_group(e: &CExpr, ctx: &RunCtx<'_>, group: &[CWorkRow]) -> Result<Value, ExecError> {
    match e {
        CExpr::Agg {
            func,
            distinct,
            arg,
        } => match arg {
            None => {
                if *func != AggFunc::Count {
                    return Err(ExecError::new(format!("{}(*) is not valid", func.name())));
                }
                Ok(Value::Int(group.len() as i64))
            }
            Some(inner) => {
                let mut values: Vec<Value> = Vec::new();
                for row in group {
                    let v = ceval(inner, ctx, row)?;
                    if !v.is_null() {
                        values.push(v);
                    }
                }
                if *distinct {
                    dedup_distinct(&mut values);
                }
                Ok(fold_agg(*func, &values))
            }
        },
        CExpr::Binary { op, left, right } => eval_binary(
            *op,
            &ceval_in_group(left, ctx, group)?,
            &ceval_in_group(right, ctx, group)?,
        ),
        CExpr::Not(inner) => {
            let v = ceval_in_group(inner, ctx, group)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        // CASE over aggregates: every piece evaluates in group context
        // (so e.g. `CASE WHEN count(*) > 2 THEN …` folds per group).
        CExpr::Case {
            operand,
            branches,
            else_,
        } => {
            let opv = operand
                .as_ref()
                .map(|o| ceval_in_group(o, ctx, group))
                .transpose()?;
            for (when, then) in branches {
                let w = ceval_in_group(when, ctx, group)?;
                let hit = match &opv {
                    Some(op) => op.sql_eq(&w) == Some(true),
                    None => w.is_truthy(),
                };
                if hit {
                    return ceval_in_group(then, ctx, group);
                }
            }
            match else_ {
                Some(e) => ceval_in_group(e, ctx, group),
                None => Ok(Value::Null),
            }
        }
        _ => match group.first() {
            Some(first) => ceval(e, ctx, first),
            None => Ok(Value::Null),
        },
    }
}
