/root/repo/target/release/deps/quickstart-90225ab89e531bd9.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-90225ab89e531bd9: examples/quickstart.rs

examples/quickstart.rs:
