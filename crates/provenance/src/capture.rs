//! Provenance capture: executes the rewritten queries and assembles the
//! provenance table (the paper's Figure 4 artifact).

use crate::error::ProvError;
use crate::rewrite::rewrite_for_provenance;
use cyclesql_sql::Query;
use cyclesql_storage::{execute_with_lineage, Database, ResultSet, SourceRef, Value};
use std::collections::HashSet;

/// One provenance-table column: a qualified source column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvColumn {
    /// Real (schema) table name the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Display label, e.g. `flight.flno`.
    pub display: String,
}

/// One provenance row with its composite tuple identifier (`<a3, f2>`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRow {
    /// Tuple identifier built from source lineage.
    pub tuple_id: String,
    /// Values aligned with the provenance columns.
    pub values: Vec<Value>,
    /// Source tuples behind this row.
    pub sources: Vec<SourceRef>,
}

/// The provenance table for one query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceTable {
    /// Provenance columns.
    pub columns: Vec<ProvColumn>,
    /// Provenance rows.
    pub rows: Vec<ProvRow>,
}

impl ProvenanceTable {
    /// Index of a column by (table?, column) reference, trying qualified then
    /// bare matching.
    pub fn column_index(&self, table: Option<&str>, column: &str) -> Option<usize> {
        if let Some(t) = table {
            if let Some(i) = self
                .columns
                .iter()
                .position(|c| c.table == t && c.column == column)
            {
                return Some(i);
            }
        }
        self.columns.iter().position(|c| c.column == column)
    }

    /// Distinct source tables in column order.
    pub fn source_tables(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for c in &self.columns {
            if seen.insert(c.table.clone()) {
                out.push(c.table.clone());
            }
        }
        out
    }

    /// Number of provenance rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the provenance is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Full provenance-tracking output for one query result.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Rewritten provenance queries (one per select core).
    pub rewritten: Vec<Query>,
    /// The assembled provenance table.
    pub table: ProvenanceTable,
    /// Set when the original result was empty and tracking was skipped
    /// (the paper's empty-result fallback).
    pub empty_result: bool,
}

/// Tracks why-provenance for `result.rows[row_idx]` of `original` on `db`.
///
/// For an empty result, returns a [`Provenance`] with `empty_result = true`
/// and an empty table — the caller falls back to operation-level semantics.
///
/// # Errors
///
/// Returns [`ProvError`] if the rewritten query fails to execute or the row
/// index is out of bounds of a non-empty result.
pub fn track_provenance(
    db: &Database,
    original: &Query,
    result: &ResultSet,
    row_idx: usize,
) -> Result<Provenance, ProvError> {
    if result.is_empty() {
        return Ok(Provenance {
            rewritten: Vec::new(),
            table: ProvenanceTable { columns: Vec::new(), rows: Vec::new() },
            empty_result: true,
        });
    }
    let row = result
        .rows
        .get(row_idx)
        .ok_or(ProvError::NoSuchResultRow { index: row_idx, len: result.len() })?;

    let rewrites = rewrite_for_provenance(db, original, &result.columns, row);
    let mut columns: Vec<ProvColumn> = Vec::new();
    let mut rows: Vec<ProvRow> = Vec::new();
    let mut seen_ids: HashSet<String> = HashSet::new();
    let mut queries = Vec::new();

    for rw in &rewrites {
        let out = execute_with_lineage(db, &rw.query)?;
        // Resolve display columns for this branch (first branch wins the
        // column layout; later branches append unseen columns).
        let branch_cols = resolve_columns(db, &rw.query, &out.result);
        let mut col_map: Vec<usize> = Vec::with_capacity(branch_cols.len());
        for bc in &branch_cols {
            let idx = match columns.iter().position(|c| c == bc) {
                Some(i) => i,
                None => {
                    columns.push(bc.clone());
                    columns.len() - 1
                }
            };
            col_map.push(idx);
        }
        for (ri, values) in out.result.rows.iter().enumerate() {
            let sources = out.lineage[ri].clone();
            let tuple_id = tuple_id_for(&sources);
            if !seen_ids.insert(tuple_id.clone()) {
                continue;
            }
            let mut aligned = vec![Value::Null; columns.len()];
            for (vi, v) in values.iter().enumerate() {
                aligned[col_map[vi]] = v.clone();
            }
            rows.push(ProvRow { tuple_id, values: aligned, sources });
        }
        queries.push(rw.query.clone());
    }

    // Rows captured from earlier branches may be shorter than the final
    // column count; pad.
    let width = columns.len();
    for r in &mut rows {
        r.values.resize(width, Value::Null);
    }

    Ok(Provenance {
        rewritten: queries,
        table: ProvenanceTable { columns, rows },
        empty_result: false,
    })
}

/// Builds a composite tuple id such as `<a3, f2>` from lineage.
fn tuple_id_for(sources: &[SourceRef]) -> String {
    let parts: Vec<String> = sources
        .iter()
        .map(|s| {
            let initial = s.table.chars().next().unwrap_or('?');
            format!("{initial}{}", s.row + 1)
        })
        .collect();
    if parts.len() == 1 {
        parts.into_iter().next().expect("one part")
    } else {
        format!("<{}>", parts.join(", "))
    }
}

/// Maps the rewritten query's projected column refs to real tables.
fn resolve_columns(db: &Database, rewritten: &Query, result: &ResultSet) -> Vec<ProvColumn> {
    let core = rewritten.leading_select();
    // alias -> real table
    let alias_map: Vec<(String, String)> = core
        .from
        .tables()
        .iter()
        .map(|t| (t.visible_name().to_string(), t.name.clone()))
        .collect();
    let resolve_table = |qualifier: Option<&str>, column: &str| -> String {
        if let Some(q) = qualifier {
            if let Some((_, real)) = alias_map.iter().find(|(vis, real)| vis == q || real == q) {
                return real.clone();
            }
        }
        // Bare column: find the table that has it.
        for (_, real) in &alias_map {
            if db
                .schema
                .table(real)
                .and_then(|t| t.column_index(column))
                .is_some()
            {
                return real.clone();
            }
        }
        alias_map.first().map(|(_, r)| r.clone()).unwrap_or_default()
    };
    let mut cols = Vec::new();
    for (i, item) in core.projections.iter().enumerate() {
        if let cyclesql_sql::SelectItem::Expr { expr: cyclesql_sql::Expr::Column(c), .. } = item {
            let table = resolve_table(c.table.as_deref(), &c.column);
            cols.push(ProvColumn {
                display: format!("{table}.{}", c.column),
                table,
                column: c.column.clone(),
            });
        } else {
            // Shouldn't happen post-rewrite; keep alignment with a synthetic
            // column.
            cols.push(ProvColumn {
                table: String::new(),
                column: result.columns.get(i).cloned().unwrap_or_default(),
                display: result.columns.get(i).cloned().unwrap_or_default(),
            });
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_sql::parse;
    use cyclesql_storage::{execute, ColumnDef, DataType, DatabaseSchema, TableSchema};

    fn flight_db() -> Database {
        let mut schema = DatabaseSchema::new("flight_1");
        schema.add_table(TableSchema::new(
            "aircraft",
            vec![
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ],
        ));
        schema.add_table(TableSchema::new(
            "flight",
            vec![
                ColumnDef::new("flno", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("origin", DataType::Text),
            ],
        ));
        schema.add_foreign_key("flight", "aid", "aircraft", "aid");
        let mut db = Database::new(schema);
        db.insert("aircraft", vec![Value::Int(1), Value::from("Boeing 747-400")]);
        db.insert("aircraft", vec![Value::Int(3), Value::from("Airbus A340-300")]);
        db.insert("flight", vec![Value::Int(2), Value::Int(1), Value::from("LA")]);
        db.insert("flight", vec![Value::Int(7), Value::Int(3), Value::from("LA")]);
        db.insert("flight", vec![Value::Int(13), Value::Int(3), Value::from("LA")]);
        db
    }

    #[test]
    fn figure4_provenance_has_two_rows() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
             WHERE T2.name = 'Airbus A340-300'",
        )
        .unwrap();
        let result = execute(&db, &q).unwrap();
        assert_eq!(result.rows[0][0], Value::Int(2));
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        assert!(!prov.empty_result);
        assert_eq!(prov.table.len(), 2, "why-provenance = the two A340 flights");
        // Provenance count equals the aggregate value — the rewrite-soundness
        // invariant for count queries.
        assert_eq!(prov.table.len() as i64, 2);
        // Columns include the filter column and both primary keys.
        let displays: Vec<&str> =
            prov.table.columns.iter().map(|c| c.display.as_str()).collect();
        assert!(displays.contains(&"aircraft.name"), "{displays:?}");
        assert!(displays.contains(&"flight.flno"), "{displays:?}");
    }

    #[test]
    fn tuple_ids_are_composite_for_joins() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
             WHERE T2.name = 'Airbus A340-300'",
        )
        .unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        for row in &prov.table.rows {
            assert!(row.tuple_id.starts_with('<'), "{}", row.tuple_id);
            assert_eq!(row.sources.len(), 2);
        }
    }

    #[test]
    fn provenance_rows_satisfy_original_predicate() {
        let db = flight_db();
        let q = parse(
            "SELECT flno FROM flight WHERE origin = 'LA'",
        )
        .unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        let origin_idx = prov.table.column_index(Some("flight"), "origin").unwrap();
        for row in &prov.table.rows {
            assert_eq!(row.values[origin_idx], Value::from("LA"));
        }
    }

    #[test]
    fn result_row_pinning_limits_provenance() {
        let db = flight_db();
        let q = parse("SELECT flno FROM flight WHERE origin = 'LA'").unwrap();
        let result = execute(&db, &q).unwrap();
        // Pin to the row with flno = 7.
        let idx = result.rows.iter().position(|r| r[0] == Value::Int(7)).unwrap();
        let prov = track_provenance(&db, &q, &result, idx).unwrap();
        assert_eq!(prov.table.len(), 1);
        let flno_idx = prov.table.column_index(Some("flight"), "flno").unwrap();
        assert_eq!(prov.table.rows[0].values[flno_idx], Value::Int(7));
    }

    #[test]
    fn empty_result_sets_flag() {
        let db = flight_db();
        let q = parse("SELECT flno FROM flight WHERE origin = 'Nowhere'").unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        assert!(prov.empty_result);
        assert!(prov.table.is_empty());
    }

    #[test]
    fn out_of_bounds_row_errors() {
        let db = flight_db();
        let q = parse("SELECT flno FROM flight").unwrap();
        let result = execute(&db, &q).unwrap();
        let err = track_provenance(&db, &q, &result, 99).unwrap_err();
        assert!(matches!(err, ProvError::NoSuchResultRow { .. }));
    }

    #[test]
    fn set_op_provenance_merges_branches() {
        let db = flight_db();
        let q = parse(
            "SELECT origin FROM flight WHERE aid = 1 \
             INTERSECT SELECT origin FROM flight WHERE aid = 3",
        )
        .unwrap();
        let result = execute(&db, &q).unwrap();
        assert_eq!(result.rows, vec![vec![Value::from("LA")]]);
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        // Branch 1: flight row 1 (aid=1, LA); branch 2: rows 2 and 3.
        assert_eq!(prov.table.len(), 3);
    }

    #[test]
    fn source_tables_listed_in_order() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid",
        )
        .unwrap();
        let result = execute(&db, &q).unwrap();
        let prov = track_provenance(&db, &q, &result, 0).unwrap();
        let tables = prov.table.source_tables();
        assert!(tables.contains(&"flight".to_string()));
        assert!(tables.contains(&"aircraft".to_string()));
    }
}

impl ProvenanceTable {
    /// Renders the provenance table as aligned ASCII (the paper's Figure 4
    /// artifact).
    pub fn to_ascii(&self) -> String {
        let mut headers: Vec<String> = vec!["tupleID".to_string()];
        headers.extend(self.columns.iter().map(|c| c.display.clone()));
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            let mut row = vec![r.tuple_id.clone()];
            row.extend(r.values.iter().map(|v| v.to_string()));
            rows.push(row);
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        let sep = format!(
            "+{}+",
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+")
        );
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&render_row(&headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    #[test]
    fn ascii_table_is_aligned() {
        let table = ProvenanceTable {
            columns: vec![
                ProvColumn { table: "flight".into(), column: "flno".into(), display: "flight.flno".into() },
                ProvColumn { table: "aircraft".into(), column: "name".into(), display: "aircraft.name".into() },
            ],
            rows: vec![
                ProvRow {
                    tuple_id: "<f2, a3>".into(),
                    values: vec![Value::Int(7), Value::from("Airbus A340-300")],
                    sources: vec![],
                },
                ProvRow {
                    tuple_id: "<f3, a3>".into(),
                    values: vec![Value::Int(13), Value::from("Airbus A340-300")],
                    sources: vec![],
                },
            ],
        };
        let ascii = table.to_ascii();
        let lines: Vec<&str> = ascii.lines().collect();
        // Header + 2 rows + 3 separators.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{ascii}");
        assert!(ascii.contains("flight.flno"));
        assert!(ascii.contains("<f3, a3>"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = ProvenanceTable { columns: vec![], rows: vec![] };
        let ascii = table.to_ascii();
        assert!(ascii.contains("tupleID"));
    }
}
