//! Canonicalization for *exact-match* (EM) evaluation.
//!
//! Spider's EM metric compares SQL structure while ignoring literal values.
//! Canonicalization runs in two phases:
//!
//! 1. **Normalization** (rename-invariant): mask every literal to a
//!    placeholder, normalize flipped comparisons (`5 < x` → `x > 5`), sort
//!    commutative conjunct lists / `GROUP BY` keys / `IN` lists by a key
//!    that masks table qualifiers, and drop projection aliases.
//! 2. **Renaming**: walk the normalized tree and rename table aliases to
//!    `t1`, `t2`, … in order of first appearance.
//!
//! Sorting before renaming (with qualifier-masked sort keys) makes the
//! whole transform idempotent — a property the property tests pin down.
//! Two queries exactly match iff their canonical forms are equal.

use crate::ast::*;
use crate::printer::to_sql;
use std::collections::HashMap;

/// Returns the canonical form of a query as a string key.
pub fn canonical_key(q: &Query) -> String {
    let mut q = q.clone();
    canonicalize(&mut q);
    to_sql(&q)
}

/// A query's canonical form, computed once and reusable for any number of
/// exact-match comparisons.
///
/// Canonicalization clones and rewrites the whole AST, so comparing one gold
/// query against k candidates via [`exact_match`] repeats that work k times
/// on the gold side. `CanonicalSql` lets callers hoist the gold half out of
/// the loop: compute it once, then compare with cheap string equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalSql(String);

impl CanonicalSql {
    /// Canonicalizes `q` into its comparable form.
    pub fn of(q: &Query) -> Self {
        CanonicalSql(canonical_key(q))
    }

    /// The canonical SQL text backing this key.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Whether two queries are an exact (syntactic, value-insensitive) match.
pub fn exact_match(a: &Query, b: &Query) -> bool {
    canonical_key(a) == canonical_key(b)
}

/// Canonicalizes a query in place.
pub fn canonicalize(q: &mut Query) {
    normalize_query(q);
    // Canonical aliases must not collide with real table names: a fresh
    // alias `t2` over a table literally named `t2` would make the printed
    // form ambiguous and break idempotence.
    let mut renamer = AliasRenamer { avoid: collect_table_names(q), ..Default::default() };
    rename_query(q, &mut renamer);
}

fn collect_table_names(q: &Query) -> std::collections::HashSet<String> {
    let mut names = std::collections::HashSet::new();
    fn walk_query(q: &Query, names: &mut std::collections::HashSet<String>) {
        for cte in &q.ctes {
            // CTE names behave like table names for collision purposes.
            names.insert(cte.name.clone());
            walk_query(&cte.query, names);
        }
        walk_body(&q.body, names);
    }
    fn walk_body(b: &QueryBody, names: &mut std::collections::HashSet<String>) {
        match b {
            QueryBody::Select(core) => {
                for t in core.from.tables() {
                    names.insert(t.name.clone());
                }
                let mut subs: Vec<&Query> = Vec::new();
                if let Some(w) = &core.where_clause {
                    subs.extend(w.subqueries());
                }
                if let Some(h) = &core.having {
                    subs.extend(h.subqueries());
                }
                for sq in subs {
                    walk_query(sq, names);
                }
            }
            QueryBody::SetOp { left, right, .. } => {
                walk_body(left, names);
                walk_body(right, names);
            }
        }
    }
    walk_query(q, &mut names);
    names
}

// ---------------------------------------------------------------------------
// Phase 1: rename-invariant normalization
// ---------------------------------------------------------------------------

fn normalize_query(q: &mut Query) {
    for cte in &mut q.ctes {
        normalize_query(&mut cte.query);
    }
    normalize_body(&mut q.body);
    for o in &mut q.order_by {
        normalize_expr(&mut o.expr);
    }
    // LIMIT value is structural in Spider EM (LIMIT 1 vs LIMIT 3 differ).
}

fn normalize_body(body: &mut QueryBody) {
    match body {
        QueryBody::Select(core) => normalize_core(core),
        QueryBody::SetOp { left, right, .. } => {
            normalize_body(left);
            normalize_body(right);
        }
    }
}

fn normalize_core(core: &mut SelectCore) {
    for p in &mut core.projections {
        if let SelectItem::Expr { expr, alias } = p {
            normalize_expr(expr);
            *alias = None;
        }
    }
    for j in &mut core.from.joins {
        if let Some(on) = &mut j.on {
            normalize_expr(on);
        }
    }
    if let Some(w) = &mut core.where_clause {
        normalize_expr(w);
        sort_conjuncts(w);
    }
    for g in &mut core.group_by {
        normalize_expr(g);
    }
    core.group_by.sort_by_key(to_key);
    if let Some(h) = &mut core.having {
        normalize_expr(h);
        sort_conjuncts(h);
    }
}

fn normalize_expr(e: &mut Expr) {
    match e {
        Expr::Column(_) => {}
        Expr::Literal(l) => *l = mask_literal(l),
        Expr::Binary { op, left, right } => {
            normalize_expr(left);
            normalize_expr(right);
            if op.is_comparison() {
                // Flip so literals sit on the right, and the lexically
                // smaller operand leads symmetric equalities.
                let left_is_literal = matches!(left.as_ref(), Expr::Literal(_));
                let right_is_literal = matches!(right.as_ref(), Expr::Literal(_));
                let should_flip = !right_is_literal
                    && (left_is_literal
                        || (*op == BinOp::Eq && to_key(left) > to_key(right)));
                if should_flip {
                    std::mem::swap(left, right);
                    *op = op.flipped();
                }
            }
        }
        Expr::Not(inner) => normalize_expr(inner),
        Expr::Agg { arg: FuncArg::Expr(inner), .. } => normalize_expr(inner),
        Expr::Agg { .. } => {}
        Expr::InSubquery { expr, subquery, .. } => {
            normalize_expr(expr);
            normalize_query(subquery);
        }
        Expr::InList { expr, list, .. } => {
            normalize_expr(expr);
            for item in list.iter_mut() {
                normalize_expr(item);
            }
            list.sort_by_key(to_key);
        }
        Expr::Exists { subquery, .. } => normalize_query(subquery),
        Expr::ScalarSubquery(q) => normalize_query(q),
        Expr::Between { expr, low, high, .. } => {
            normalize_expr(expr);
            normalize_expr(low);
            normalize_expr(high);
        }
        Expr::Like { expr, pattern, .. } => {
            normalize_expr(expr);
            *pattern = "?".to_string();
        }
        Expr::IsNull { expr, .. } => normalize_expr(expr),
        Expr::Case { operand, branches, else_ } => {
            if let Some(op) = operand {
                normalize_expr(op);
            }
            // Branch order is semantic (first match wins): normalize in
            // place, never sort.
            for (cond, value) in branches.iter_mut() {
                normalize_expr(cond);
                normalize_expr(value);
            }
            if let Some(e) = else_ {
                normalize_expr(e);
            }
        }
    }
}

fn mask_literal(_l: &Literal) -> Literal {
    Literal::Str("?".to_string())
}

fn sort_conjuncts(e: &mut Expr) {
    let parts: Vec<Expr> = e.conjuncts().into_iter().cloned().collect();
    if parts.len() > 1 {
        let mut parts = parts;
        parts.sort_by_key(to_key);
        if let Some(joined) = Expr::from_conjuncts(parts) {
            *e = joined;
        }
    }
}

/// Ordering key for commutative lists: the rendered expression with every
/// table qualifier masked, so ordering never depends on alias names.
fn to_key(e: &Expr) -> String {
    let mut masked = e.clone();
    mask_qualifiers(&mut masked);
    format!("{masked}")
}

fn mask_qualifiers(e: &mut Expr) {
    match e {
        Expr::Column(c)
            if c.table.is_some() => {
                c.table = Some("_".to_string());
            }
        Expr::Binary { left, right, .. } => {
            mask_qualifiers(left);
            mask_qualifiers(right);
        }
        Expr::Not(inner) => mask_qualifiers(inner),
        Expr::Agg { arg: FuncArg::Expr(inner), .. } => mask_qualifiers(inner),
        Expr::InList { expr, list, .. } => {
            mask_qualifiers(expr);
            for item in list {
                mask_qualifiers(item);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            mask_qualifiers(expr);
            mask_qualifiers(low);
            mask_qualifiers(high);
        }
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => mask_qualifiers(expr),
        Expr::Case { operand, branches, else_ } => {
            if let Some(op) = operand {
                mask_qualifiers(op);
            }
            for (cond, value) in branches.iter_mut() {
                mask_qualifiers(cond);
                mask_qualifiers(value);
            }
            if let Some(e) = else_ {
                mask_qualifiers(e);
            }
        }
        // Subqueries contribute their full text; masking inside them is
        // unnecessary for a stable ordering key.
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Phase 2: alias renaming (first-appearance order over the normalized tree)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct AliasRenamer {
    /// Maps original alias/table name → canonical alias.
    map: HashMap<String, String>,
    /// Identifiers canonical aliases must not collide with (table names).
    avoid: std::collections::HashSet<String>,
    next: usize,
}

impl AliasRenamer {
    fn canonical_for(&mut self, original: &str) -> String {
        if let Some(c) = self.map.get(original) {
            return c.clone();
        }
        let c = loop {
            self.next += 1;
            let candidate = format!("t{}", self.next);
            if !self.avoid.contains(&candidate) {
                break candidate;
            }
        };
        self.map.insert(original.to_string(), c.clone());
        c
    }
}

fn rename_query(q: &mut Query, renamer: &mut AliasRenamer) {
    for cte in &mut q.ctes {
        // CTE names are meaningful identifiers (they name an intermediate
        // result), not throwaway aliases: pin them to themselves so every
        // reference — qualified column or FROM — keeps the name, and
        // rename the aliases *inside* the body with the shared renamer.
        renamer.map.insert(cte.name.clone(), cte.name.clone());
        rename_query(&mut cte.query, renamer);
    }
    rename_body(&mut q.body, renamer);
    for o in &mut q.order_by {
        rename_expr(&mut o.expr, renamer);
    }
}

fn rename_body(body: &mut QueryBody, renamer: &mut AliasRenamer) {
    match body {
        QueryBody::Select(core) => rename_core(core, renamer),
        QueryBody::SetOp { left, right, .. } => {
            rename_body(left, renamer);
            rename_body(right, renamer);
        }
    }
}

fn rename_core(core: &mut SelectCore, renamer: &mut AliasRenamer) {
    // Register table aliases first: both the alias and the bare table name
    // map to the same canonical alias so `flight.id` and `T1.id` agree.
    register_table(&mut core.from.base, renamer);
    for j in &mut core.from.joins {
        register_table(&mut j.table, renamer);
    }
    for p in &mut core.projections {
        match p {
            SelectItem::Expr { expr, .. } => rename_expr(expr, renamer),
            SelectItem::QualifiedStar(t) => *t = renamer.canonical_for(t),
            SelectItem::Star => {}
        }
    }
    for j in &mut core.from.joins {
        if let Some(on) = &mut j.on {
            rename_expr(on, renamer);
        }
    }
    if let Some(w) = &mut core.where_clause {
        rename_expr(w, renamer);
    }
    for g in &mut core.group_by {
        rename_expr(g, renamer);
    }
    if let Some(h) = &mut core.having {
        rename_expr(h, renamer);
    }
}

fn register_table(t: &mut TableRef, renamer: &mut AliasRenamer) {
    let visible = t.visible_name().to_string();
    let canonical = renamer.canonical_for(&visible);
    if t.alias.is_some() {
        renamer.map.entry(t.name.clone()).or_insert_with(|| canonical.clone());
    }
    t.alias = Some(canonical);
}

fn rename_expr(e: &mut Expr, renamer: &mut AliasRenamer) {
    match e {
        Expr::Column(c) => {
            if let Some(t) = &c.table {
                c.table = Some(renamer.canonical_for(t));
            }
        }
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            rename_expr(left, renamer);
            rename_expr(right, renamer);
        }
        Expr::Not(inner) => rename_expr(inner, renamer),
        Expr::Agg { arg: FuncArg::Expr(inner), .. } => rename_expr(inner, renamer),
        Expr::Agg { .. } => {}
        Expr::InSubquery { expr, subquery, .. } => {
            rename_expr(expr, renamer);
            rename_query(subquery, renamer);
        }
        Expr::InList { expr, list, .. } => {
            rename_expr(expr, renamer);
            for item in list.iter_mut() {
                rename_expr(item, renamer);
            }
        }
        Expr::Exists { subquery, .. } => rename_query(subquery, renamer),
        Expr::ScalarSubquery(q) => rename_query(q, renamer),
        Expr::Between { expr, low, high, .. } => {
            rename_expr(expr, renamer);
            rename_expr(low, renamer);
            rename_expr(high, renamer);
        }
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => rename_expr(expr, renamer),
        Expr::Case { operand, branches, else_ } => {
            if let Some(op) = operand {
                rename_expr(op, renamer);
            }
            for (cond, value) in branches.iter_mut() {
                rename_expr(cond, renamer);
                rename_expr(value, renamer);
            }
            if let Some(e) = else_ {
                rename_expr(e, renamer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn em(a: &str, b: &str) -> bool {
        exact_match(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn values_ignored() {
        assert!(em(
            "SELECT name FROM t WHERE age > 20",
            "SELECT name FROM t WHERE age > 99",
        ));
    }

    #[test]
    fn alias_names_ignored() {
        assert!(em(
            "SELECT T1.name FROM country AS T1 JOIN city AS T2 ON T1.code = T2.countrycode",
            "SELECT a.name FROM country AS a JOIN city AS b ON a.code = b.countrycode",
        ));
    }

    #[test]
    fn conjunct_order_ignored() {
        assert!(em(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 9 AND x = 7",
        ));
    }

    #[test]
    fn different_aggregate_differs() {
        assert!(!em("SELECT count(*) FROM t", "SELECT max(id) FROM t"));
    }

    #[test]
    fn different_comparison_op_differs() {
        assert!(!em(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x >= 1",
        ));
    }

    #[test]
    fn flipped_equality_matches() {
        assert!(em(
            "SELECT a FROM t WHERE 1 = x",
            "SELECT a FROM t WHERE x = 1",
        ));
    }

    #[test]
    fn flipped_inequality_matches() {
        assert!(em(
            "SELECT a FROM t WHERE 5 < x",
            "SELECT a FROM t WHERE x > 3",
        ));
    }

    #[test]
    fn projection_alias_ignored() {
        assert!(em(
            "SELECT count(*) AS n FROM t",
            "SELECT count(*) FROM t",
        ));
    }

    #[test]
    fn in_list_order_ignored() {
        assert!(em(
            "SELECT a FROM t WHERE x IN (1, 2)",
            "SELECT a FROM t WHERE x IN (2, 1)",
        ));
    }

    #[test]
    fn limit_value_is_structural() {
        assert!(!em(
            "SELECT a FROM t ORDER BY a LIMIT 1",
            "SELECT a FROM t ORDER BY a LIMIT 3",
        ));
    }

    #[test]
    fn distinct_is_structural() {
        assert!(!em("SELECT DISTINCT a FROM t", "SELECT a FROM t"));
    }

    #[test]
    fn set_op_kind_is_structural() {
        assert!(!em(
            "SELECT a FROM t UNION SELECT a FROM u",
            "SELECT a FROM t INTERSECT SELECT a FROM u",
        ));
    }

    #[test]
    fn table_name_vs_alias_qualification() {
        assert!(em(
            "SELECT flight.flno FROM flight AS T1 WHERE T1.origin = 'LA'",
            "SELECT T1.flno FROM flight AS T1 WHERE T1.origin = 'LA'",
        ));
    }

    #[test]
    fn canonical_key_is_stable() {
        let q = parse("SELECT a FROM t WHERE x = 1 AND y = 2").unwrap();
        assert_eq!(canonical_key(&q), canonical_key(&q));
    }

    #[test]
    fn cte_names_survive_canonicalization() {
        let q = parse(
            "WITH big AS (SELECT name FROM city WHERE population > 1000) \
             SELECT big.name FROM big",
        )
        .unwrap();
        let k = canonical_key(&q);
        assert!(k.contains("WITH big AS"), "key: {k}");
        assert!(k.contains("FROM big"), "key: {k}");
        // Idempotent: canonicalizing the canonical form is a fixed point.
        assert_eq!(k, canonical_key(&parse(&k).unwrap()));
    }

    #[test]
    fn cte_literals_masked_and_aliases_renamed() {
        assert!(em(
            "WITH big AS (SELECT name FROM city AS c WHERE c.population > 1000) SELECT name FROM big",
            "WITH big AS (SELECT name FROM city AS z WHERE z.population > 9) SELECT name FROM big",
        ));
        // Different CTE names are structural: they name the intermediate.
        assert!(!em(
            "WITH big AS (SELECT name FROM city) SELECT name FROM big",
            "WITH tiny AS (SELECT name FROM city) SELECT name FROM tiny",
        ));
    }

    #[test]
    fn case_branch_order_is_structural_but_values_are_not() {
        assert!(em(
            "SELECT CASE WHEN x > 1 THEN 'a' ELSE 'b' END FROM t",
            "SELECT CASE WHEN x > 9 THEN 'zz' ELSE 'qq' END FROM t",
        ));
        assert!(!em(
            "SELECT CASE WHEN x > 1 THEN 'a' WHEN y > 1 THEN 'b' END FROM t",
            "SELECT CASE WHEN y > 1 THEN 'b' WHEN x > 1 THEN 'a' END FROM t",
        ));
    }

    #[test]
    fn join_flavor_is_structural() {
        assert!(!em(
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id",
            "SELECT a FROM t RIGHT JOIN u ON t.id = u.id",
        ));
        let q = parse("SELECT a FROM t FULL OUTER JOIN u ON t.id = u.id").unwrap();
        let k = canonical_key(&q);
        assert!(k.contains("FULL OUTER JOIN"), "key: {k}");
        assert_eq!(k, canonical_key(&parse(&k).unwrap()));
    }

    #[test]
    fn idempotent_on_sorted_alias_conjuncts() {
        // The regression behind the two-phase design: sorting must not
        // change alias numbering on re-canonicalization.
        let q = parse(
            "SELECT * FROM a UNION SELECT * FROM a WHERE y.h = 1 AND x.a = 2 AND a = 3",
        )
        .unwrap();
        let k1 = canonical_key(&q);
        let k2 = canonical_key(&parse(&k1).unwrap());
        assert_eq!(k1, k2);
    }
}
