/root/repo/target/release/deps/cyclesql_serve-23a4b6fd7b6cf920.d: crates/serve/src/lib.rs crates/serve/src/catalog.rs crates/serve/src/engine.rs crates/serve/src/metrics.rs crates/serve/src/plan_cache.rs crates/serve/src/prometheus.rs

/root/repo/target/release/deps/cyclesql_serve-23a4b6fd7b6cf920: crates/serve/src/lib.rs crates/serve/src/catalog.rs crates/serve/src/engine.rs crates/serve/src/metrics.rs crates/serve/src/plan_cache.rs crates/serve/src/prometheus.rs

crates/serve/src/lib.rs:
crates/serve/src/catalog.rs:
crates/serve/src/engine.rs:
crates/serve/src/metrics.rs:
crates/serve/src/plan_cache.rs:
crates/serve/src/prometheus.rs:
