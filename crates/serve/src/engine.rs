//! The concurrent serving engine: a fixed worker pool fed by a bounded
//! admission queue, running the full CycleSQL pipeline (translate → execute
//! → provenance → explain → verify) per request.
//!
//! Admission backpressure has two policies: [`AdmissionPolicy::Block`]
//! parks the submitting thread until the queue has room (closed-loop
//! clients), [`AdmissionPolicy::Shed`] rejects immediately with
//! [`ServeError::Overloaded`] (open-loop clients that must bound tail
//! latency). Per-request deadlines abandon the candidate loop cleanly
//! between pipeline stages. [`ServiceEngine::shutdown`] drains every
//! admitted request before the workers exit.

use crate::catalog::Catalog;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::requests::{sql_digest, RequestLog, RequestSummary};
use cyclesql_benchgen::BenchmarkItem;
use cyclesql_core::{CycleSql, LoopVerifier, PlanSource, RunControls, StageTimings};
use cyclesql_models::{SimulatedModel, TranslationRequest};
use cyclesql_obs::{
    Exemplar, SharedSpan, Span, SpanCtx, Tracer, WindowConfig, WindowSet, WindowSnapshot,
};
use cyclesql_sql::{parse, Query};
use cyclesql_storage::{compile, CompiledQuery, Database, ResultSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitter until the queue has room (closed-loop load).
    Block,
    /// Reject immediately with [`ServeError::Overloaded`] (load shedding).
    Shed,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running the pipeline.
    pub workers: usize,
    /// Bounded admission-queue depth.
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub policy: AdmissionPolicy,
    /// Per-request deadline, measured from admission; `None` never times
    /// out.
    pub deadline: Option<Duration>,
    /// Total compiled-plan cache capacity.
    pub plan_cache_capacity: usize,
    /// Plan-cache shard count.
    pub plan_cache_shards: usize,
    /// Candidates requested from the model per question (beam size).
    pub k: usize,
    /// Intra-query morsel workers per candidate execution when the engine
    /// is otherwise idle. The effective width divides by the number of
    /// in-flight requests (floor 1), so intra-query parallelism speeds up
    /// a lightly loaded engine without oversubscribing a saturated one —
    /// at full occupancy every query degrades to single-threaded
    /// execution. `1` (the default) disables intra-query parallelism.
    pub intra_query_threads: usize,
    /// Capacity of the per-request debug summary ring behind
    /// `/v1/debug/requests`; `0` disables it. Overwrites of unread
    /// entries are counted into the tracer's `ObsCounters` only when the
    /// engine is traced, keeping the untraced all-zero counter gate.
    pub request_log_capacity: usize,
    /// Rolling windowed telemetry (per-stage rate / error-rate / latency
    /// histograms with trace exemplars). `None` (the default) keeps the
    /// hot path free of window bookkeeping.
    pub window: Option<WindowConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            policy: AdmissionPolicy::Block,
            deadline: None,
            plan_cache_capacity: 1024,
            plan_cache_shards: 8,
            k: 8,
            intra_query_threads: 1,
            request_log_capacity: 256,
            window: None,
        }
    }
}

/// One NL question to serve. The target database is the item's `db_name`.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The question (plus its gold SQL, consulted only by the oracle
    /// verifier).
    pub item: Arc<BenchmarkItem>,
}

/// A served answer.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The database the question was answered against.
    pub db_id: String,
    /// The selected SQL (first verified candidate, or the top-1 fallback).
    pub sql: String,
    /// Whether the verifier accepted a candidate.
    pub accepted: bool,
    /// Loop iterations (candidates examined).
    pub iterations: usize,
    /// The data-grounded explanation text of the chosen candidate, when
    /// one was generated.
    pub explanation: Option<String>,
    /// The chosen candidate's result rows.
    pub result: Option<Arc<ResultSet>>,
    /// Per-stage wall-clock for this request (translate included).
    pub stages: StageTimings,
    /// Time the request spent in the admission queue before a worker
    /// picked it up.
    pub queue_wait: Duration,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: the queue was full under [`AdmissionPolicy::Shed`].
    Overloaded,
    /// The deadline passed before a response was produced.
    DeadlineExceeded,
    /// The catalog serves no database with this id.
    UnknownDatabase(String),
    /// The engine shut down before the request could be admitted.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full, request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::UnknownDatabase(id) => write!(f, "unknown database `{id}`"),
            ServeError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot response slot shared between submitter and worker.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
}

/// A handle to a pending response; [`Ticket::wait`] blocks until the
/// worker fulfils it.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request is served (or fails).
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut guard = self.slot.result.lock().expect("response slot poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.slot.ready.wait(guard).expect("response slot poisoned");
        }
    }
}

struct Job {
    /// Engine-assigned request id, carried into the request's root span.
    id: u64,
    item: Arc<BenchmarkItem>,
    slot: Arc<Slot>,
    deadline: Option<Instant>,
    /// Admission time, for queue-wait accounting.
    submitted: Instant,
    /// When a front tier (the network server) owns the request's root
    /// span, the engine's `serve` span becomes its child instead of a
    /// trace root.
    parent: Option<SharedSpan>,
}

/// State shared by every worker.
struct Shared {
    catalog: Arc<Catalog>,
    model: SimulatedModel,
    cycle: CycleSql,
    cache: PlanCache,
    metrics: Metrics,
    k: usize,
    /// Request tracing; `None` keeps the hot path span-free.
    tracer: Option<Arc<Tracer>>,
    /// Collect an EXPLAIN ANALYZE operator profile per traced execution.
    analyze: bool,
    /// Monotonic request-id source.
    next_request: AtomicU64,
    /// Idle-engine intra-query worker cap ([`ServeConfig`] knob).
    intra_query_threads: usize,
    /// Requests currently being processed by workers (the occupancy gauge
    /// that divides `intra_query_threads` into each request's effective
    /// execution width).
    in_flight: AtomicUsize,
    /// Bounded per-request debug summaries; `None` when disabled.
    requests: Option<RequestLog>,
    /// Rolling windowed telemetry; `None` when disabled.
    windows: Option<Arc<WindowSet>>,
}

/// Window indices in [`Shared::windows`]: `total` first, then the five
/// pipeline stages in [`crate::requests::STAGE_NAMES`] order.
const WINDOW_STAGES: [&str; 6] = [
    "total",
    "translate",
    "execute",
    "provenance",
    "explain",
    "verify",
];

/// Per-request view of the shared plan cache: every lookup delegates to the
/// engine-wide cache (so its global hit/miss counters stay exact), while the
/// request's own hit/miss split is tallied here for its root span.
struct RequestPlans<'a> {
    cache: &'a PlanCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> RequestPlans<'a> {
    fn new(cache: &'a PlanCache) -> Self {
        RequestPlans {
            cache,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PlanSource for RequestPlans<'_> {
    fn plan(&self, db: &Database, _sql: &str, ast: &Arc<Query>) -> Option<Arc<CompiledQuery>> {
        let key = PlanKey::of(db, ast);
        if let Some(plan) = self.cache.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(compile(db, ast).ok()?);
        self.cache.insert(key, Arc::clone(&plan));
        Some(plan)
    }
}

/// The serving engine. Start it with [`ServiceEngine::start`], submit with
/// [`ServiceEngine::call`] (or [`ServiceEngine::submit`] for pipelined
/// clients), and stop it with [`ServiceEngine::shutdown`], which drains
/// in-flight requests and returns the final metrics.
pub struct ServiceEngine {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    policy: AdmissionPolicy,
    deadline: Option<Duration>,
}

impl ServiceEngine {
    /// Spawns the worker pool over an immutable catalog, one model, and
    /// one configured feedback loop. No request tracing: the pipeline's
    /// span hooks all collapse to no-ops.
    pub fn start(
        catalog: Arc<Catalog>,
        model: SimulatedModel,
        cycle: CycleSql,
        config: ServeConfig,
    ) -> Self {
        Self::start_inner(catalog, model, cycle, config, None, false)
    }

    /// [`ServiceEngine::start`] with request tracing: every request opens a
    /// root `serve` span on `tracer` (request id, database, admission
    /// outcome, plan-cache hits/misses), with per-candidate `cycle` children
    /// and `execute` / `provenance` / `explain` / `verify` stage spans
    /// below. With `analyze` set, each traced execution additionally
    /// collects an EXPLAIN ANALYZE operator profile, attached to its
    /// `execute` span.
    pub fn start_traced(
        catalog: Arc<Catalog>,
        model: SimulatedModel,
        cycle: CycleSql,
        config: ServeConfig,
        tracer: Arc<Tracer>,
        analyze: bool,
    ) -> Self {
        Self::start_inner(catalog, model, cycle, config, Some(tracer), analyze)
    }

    fn start_inner(
        catalog: Arc<Catalog>,
        model: SimulatedModel,
        cycle: CycleSql,
        config: ServeConfig,
        tracer: Option<Arc<Tracer>>,
        analyze: bool,
    ) -> Self {
        // Overwrite accounting for the request ring goes through the
        // tracer's counters; an untraced engine's ring counts nothing.
        let ring_counters = tracer.as_ref().map(|t| Arc::clone(t.counters()));
        let requests = (config.request_log_capacity > 0)
            .then(|| RequestLog::new(config.request_log_capacity, ring_counters));
        let windows = config
            .window
            .map(|cfg| Arc::new(WindowSet::new(&WINDOW_STAGES, cfg)));
        let shared = Arc::new(Shared {
            catalog,
            model,
            cycle,
            cache: PlanCache::new(config.plan_cache_capacity, config.plan_cache_shards),
            metrics: Metrics::default(),
            k: config.k.max(1),
            tracer,
            analyze,
            next_request: AtomicU64::new(0),
            intra_query_threads: config.intra_query_threads.max(1),
            in_flight: AtomicUsize::new(0),
            requests,
            windows,
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        ServiceEngine {
            shared,
            tx: Some(tx),
            workers,
            policy: config.policy,
            deadline: config.deadline,
        }
    }

    /// Submits a request, returning a [`Ticket`] once admitted. Under
    /// [`AdmissionPolicy::Block`] this parks until the queue has room;
    /// under [`AdmissionPolicy::Shed`] a full queue fails fast with
    /// [`ServeError::Overloaded`].
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        self.submit_under(req, None)
    }

    /// [`ServiceEngine::submit`] with an optional parent span owned by a
    /// front tier: the request's `serve` span is opened as its child
    /// instead of a trace root, so one trace covers wire handling and
    /// pipeline work. When a parent is supplied, shed outcomes are *not*
    /// given an engine-side span — the caller owns the root and records
    /// the admission outcome there.
    pub fn submit_under(
        &self,
        req: ServeRequest,
        parent: Option<SharedSpan>,
    ) -> Result<Ticket, ServeError> {
        let slot = Arc::new(Slot::default());
        let has_parent = parent.is_some();
        let job = Job {
            id: self.shared.next_request.fetch_add(1, Ordering::Relaxed),
            item: req.item,
            slot: Arc::clone(&slot),
            deadline: self.deadline.map(|d| Instant::now() + d),
            submitted: Instant::now(),
            parent,
        };
        let tx = self.tx.as_ref().expect("engine running");
        match self.policy {
            AdmissionPolicy::Block => {
                tx.send(job).map_err(|_| ServeError::Shutdown)?;
            }
            AdmissionPolicy::Shed => match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    self.shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    // Shed requests never reach a worker, so their trace is
                    // just the root span with the admission outcome.
                    let mut trace_id = job.parent.as_ref().and_then(|p| p.trace_id());
                    if let (Some(tracer), false) = (&self.shared.tracer, has_parent) {
                        let mut s = tracer.root("serve");
                        trace_id = Some(s.trace_id());
                        s.set("request", job.id);
                        s.set("db", job.item.db_name.as_str());
                        s.set("outcome", "shed");
                        s.set_error();
                    }
                    if let Some(log) = &self.shared.requests {
                        log.push(RequestSummary {
                            request: job.id,
                            trace_id,
                            item_id: job.item.id.clone(),
                            db: job.item.db_name.clone(),
                            outcome: "shed",
                            accepted: false,
                            iterations: 0,
                            plan_hits: 0,
                            plan_misses: 0,
                            queue_wait_us: 0,
                            total_us: 0,
                            stages_us: [0; 5],
                            sql_digest: 0,
                        });
                    }
                    if let Some(windows) = &self.shared.windows {
                        windows.record(0, 0, true, None);
                    }
                    return Err(ServeError::Overloaded);
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::Shutdown),
            },
        }
        self.shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { slot })
    }

    /// Submits a request and blocks for its response.
    pub fn call(&self, req: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// The engine's plan cache (shared by every worker).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// Requests currently being processed by workers (excludes queued
    /// requests). A front router reads this as the shard's busyness.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Buffered per-request debug summaries, oldest first (empty when the
    /// request log is disabled).
    pub fn recent_requests(&self) -> Vec<RequestSummary> {
        self.shared
            .requests
            .as_ref()
            .map(RequestLog::recent)
            .unwrap_or_default()
    }

    /// Buffered summaries at least `threshold_us` of total time, oldest
    /// first (empty when the request log is disabled).
    pub fn slow_requests(&self, threshold_us: u64) -> Vec<RequestSummary> {
        self.shared
            .requests
            .as_ref()
            .map(|log| log.slow(threshold_us))
            .unwrap_or_default()
    }

    /// Point-in-time windowed telemetry per stage (`None` when windows
    /// are disabled). Labels are `total` plus the five pipeline stages.
    pub fn telemetry_snapshot(&self) -> Option<Vec<(&'static str, WindowSnapshot)>> {
        self.shared.windows.as_ref().map(|w| w.snapshot())
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.cache.hits(), self.shared.cache.misses())
    }

    /// Graceful shutdown: stops admitting, drains every queued request,
    /// joins the workers, and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.metrics_snapshot()
    }

    fn stop_and_join(&mut self) {
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServiceEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the dequeue; `recv` drains
        // already-admitted jobs even after the sender is dropped, which is
        // exactly the graceful-shutdown contract.
        let job = match rx.lock().expect("admission queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let result = process(shared, &job);
        shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
        let mut guard = job.slot.result.lock().expect("response slot poisoned");
        *guard = Some(result);
        job.slot.ready.notify_one();
    }
}

/// RAII occupancy ticket: registers one in-flight request on construction
/// and reports the occupancy *including this request*, so the divisor is
/// never zero; deregisters on drop (any exit path, including panics).
struct InFlight<'a> {
    gauge: &'a AtomicUsize,
    occupancy: usize,
}

impl<'a> InFlight<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        let occupancy = gauge.fetch_add(1, Ordering::Relaxed) + 1;
        InFlight { gauge, occupancy }
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs the full pipeline for one admitted request, inside a root `serve`
/// span when the engine is traced.
fn process(shared: &Shared, job: &Job) -> Result<ServeResponse, ServeError> {
    // Queue wait is measured for every dequeued request — success, error,
    // or deadline-expired-in-queue alike — because it is a property of the
    // admission queue, not of the pipeline outcome.
    let queue_wait = job.submitted.elapsed();
    shared.metrics.queue_wait.record(queue_wait);
    // Split the idle-engine intra-query budget across whatever is running
    // right now: an idle engine gives this request the full width, a
    // saturated one degrades it to single-threaded execution, and total
    // execution threads never exceed `workers × intra_query_threads /
    // occupancy` — no oversubscription as load rises.
    let ticket = InFlight::enter(&shared.in_flight);
    let exec_threads = (shared.intra_query_threads / ticket.occupancy).max(1);
    let plans = RequestPlans::new(&shared.cache);
    let started = Instant::now();
    // The `serve` span: a child of the front tier's root when one was
    // supplied (the parent's tracer carries the trace), otherwise a trace
    // root on the engine's own tracer, otherwise tracing is off.
    let root: Option<Span> = match &job.parent {
        Some(parent) => parent.child("serve"),
        None => shared.tracer.as_ref().map(|t| t.root("serve")),
    };
    let trace_id = root.as_ref().map(Span::trace_id);
    let result = match root {
        None => process_inner(shared, job, &plans, SpanCtx::none(), false, exec_threads)
            .map(|r| with_queue_wait(r, queue_wait)),
        Some(mut root) => {
            root.set("request", job.id);
            root.set("db", job.item.db_name.as_str());
            root.set("exec_threads", exec_threads);
            root.set("queue_wait_us", queue_wait.as_micros() as u64);
            let result = process_inner(
                shared,
                job,
                &plans,
                SpanCtx::of(&root),
                shared.analyze,
                exec_threads,
            )
            .map(|r| with_queue_wait(r, queue_wait));
            root.set("plan_hits", plans.hits.load(Ordering::Relaxed));
            root.set("plan_misses", plans.misses.load(Ordering::Relaxed));
            match &result {
                Ok(resp) => {
                    root.set("outcome", "ok");
                    root.set("accepted", resp.accepted);
                    root.set("iterations", resp.iterations);
                }
                Err(e) => {
                    root.set("outcome", outcome_label(e));
                    root.set_error();
                }
            }
            result
        }
    };
    record_outcome(shared, job, &plans, trace_id, queue_wait, started, &result);
    result
}

/// The fixed outcome vocabulary shared by spans and request summaries.
fn outcome_label(e: &ServeError) -> &'static str {
    match e {
        ServeError::Overloaded => "overloaded",
        ServeError::DeadlineExceeded => "deadline",
        ServeError::UnknownDatabase(_) => "unknown_db",
        ServeError::Shutdown => "shutdown",
    }
}

/// Files one finished request into the debug summary ring and the rolling
/// telemetry windows (whichever are enabled). Exemplars are attached only
/// when the request was traced — they carry its trace id.
fn record_outcome(
    shared: &Shared,
    job: &Job,
    plans: &RequestPlans<'_>,
    trace_id: Option<u64>,
    queue_wait: Duration,
    started: Instant,
    result: &Result<ServeResponse, ServeError>,
) {
    if shared.requests.is_none() && shared.windows.is_none() {
        return;
    }
    let total_us = started.elapsed().as_micros() as u64;
    let us = |d: Duration| d.as_micros() as u64;
    let (outcome, accepted, iterations, stages_us, digest) = match result {
        Ok(resp) => (
            "ok",
            resp.accepted,
            resp.iterations,
            [
                us(resp.stages.translate),
                us(resp.stages.execute),
                us(resp.stages.provenance),
                us(resp.stages.explain),
                us(resp.stages.verify),
            ],
            sql_digest(&resp.sql),
        ),
        Err(e) => (outcome_label(e), false, 0, [0; 5], 0),
    };
    if let Some(log) = &shared.requests {
        log.push(RequestSummary {
            request: job.id,
            trace_id,
            item_id: job.item.id.clone(),
            db: job.item.db_name.clone(),
            outcome,
            accepted,
            iterations,
            plan_hits: plans.hits.load(Ordering::Relaxed),
            plan_misses: plans.misses.load(Ordering::Relaxed),
            queue_wait_us: queue_wait.as_micros() as u64,
            total_us,
            stages_us,
            sql_digest: digest,
        });
    }
    if let Some(windows) = &shared.windows {
        let exemplar = |value_us: u64| {
            trace_id.map(|tid| Exemplar {
                trace_id: tid,
                sql_digest: digest,
                value_us,
            })
        };
        windows.record(0, total_us, result.is_err(), exemplar(total_us));
        if result.is_ok() {
            for (i, stage_us) in stages_us.into_iter().enumerate() {
                windows.record(i + 1, stage_us, false, exemplar(stage_us));
            }
        }
    }
}

/// Stamps the queue wait measured at dequeue onto a finished response.
fn with_queue_wait(mut resp: ServeResponse, queue_wait: Duration) -> ServeResponse {
    resp.queue_wait = queue_wait;
    resp
}

fn process_inner(
    shared: &Shared,
    job: &Job,
    plans: &RequestPlans<'_>,
    span: SpanCtx<'_>,
    analyze: bool,
    exec_threads: usize,
) -> Result<ServeResponse, ServeError> {
    let started = Instant::now();
    let metrics = &shared.metrics;
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        // Expired while queued: don't burn a worker on a dead request.
        metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::DeadlineExceeded);
    }
    let item = job.item.as_ref();
    let Some(entry) = shared.catalog.get(&item.db_name) else {
        metrics.unknown_db.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::UnknownDatabase(item.db_name.clone()));
    };
    let db = entry.db.as_ref();

    let translate_span = span.child("translate");
    let t = Instant::now();
    let request = TranslationRequest {
        item,
        db,
        k: shared.k,
        severity: 0.0,
        science: entry.science,
    };
    let candidates = shared.model.translate_prepared(&request, None);
    let translate = t.elapsed();
    if let Some(mut s) = translate_span {
        s.set("candidates", candidates.len());
    }

    // The oracle verifier compares against the gold result; route the gold
    // query through the plan cache too — production workloads repeat
    // questions, so its plan is as cacheable as any candidate's.
    let gold_result = match &shared.cycle.verifier {
        LoopVerifier::Oracle => parse(&item.gold_sql).ok().map(Arc::new).and_then(|ast| {
            let plan = plans.plan(db, &item.gold_sql, &ast)?;
            plan.run_result(db).ok()
        }),
        _ => None,
    };

    let controls = RunControls {
        deadline: job.deadline,
        plans: Some(plans),
        span,
        analyze,
        exec_threads,
    };
    let mut outcome =
        shared
            .cycle
            .run_controlled(item, db, &candidates, gold_result.as_ref(), &controls);
    if outcome.timed_out {
        metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::DeadlineExceeded);
    }
    outcome.stages.translate = translate;

    metrics
        .iterations
        .fetch_add(outcome.iterations as u64, Ordering::Relaxed);
    let rejects = outcome.iterations - usize::from(outcome.accepted);
    metrics
        .verifier_rejects
        .fetch_add(rejects as u64, Ordering::Relaxed);
    metrics
        .verifier_accepts
        .fetch_add(u64::from(outcome.accepted), Ordering::Relaxed);
    metrics.stages.record(&outcome.stages, started.elapsed());

    Ok(ServeResponse {
        db_id: item.db_name.clone(),
        sql: outcome.chosen_sql,
        accepted: outcome.accepted,
        iterations: outcome.iterations,
        explanation: outcome.explanation.map(|e| e.text),
        result: outcome.chosen_result,
        stages: outcome.stages,
        queue_wait: Duration::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_benchgen::{build_spider_suite, SuiteConfig, Variant};
    use cyclesql_models::ModelProfile;
    use cyclesql_nli::{Verdict, Verifier, VerifyInput};

    fn quick_suite() -> cyclesql_benchgen::BenchmarkSuite {
        build_spider_suite(
            Variant::Spider,
            SuiteConfig {
                seed: 0xE16,
                train_per_template: 1,
                eval_per_template: 2,
            },
        )
    }

    fn oracle_engine(config: ServeConfig) -> (ServiceEngine, Vec<Arc<BenchmarkItem>>) {
        let suite = quick_suite();
        let items: Vec<Arc<BenchmarkItem>> = suite.dev.iter().cloned().map(Arc::new).collect();
        let catalog = Arc::new(Catalog::from_suites([&suite]));
        let engine = ServiceEngine::start(
            catalog,
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            CycleSql::new(LoopVerifier::Oracle),
            config,
        );
        (engine, items)
    }

    /// A verifier with a fixed wall-clock cost per verify call, so tests
    /// can saturate the admission queue deterministically. `entails`
    /// decides whether the loop stops at the first candidate (true) or
    /// keeps walking the beam (false).
    struct SlowVerifier {
        per_verify: Duration,
        entails: bool,
    }
    impl Verifier for SlowVerifier {
        fn verify(&self, _input: &VerifyInput<'_>) -> Verdict {
            std::thread::sleep(self.per_verify);
            Verdict {
                entails: self.entails,
                score: if self.entails { 1.0 } else { 0.0 },
            }
        }
        fn name(&self) -> &'static str {
            "slow"
        }
    }

    fn slow_engine(
        config: ServeConfig,
        per_verify: Duration,
        entails: bool,
    ) -> (ServiceEngine, Vec<Arc<BenchmarkItem>>) {
        let suite = quick_suite();
        let items: Vec<Arc<BenchmarkItem>> = suite.dev.iter().cloned().map(Arc::new).collect();
        let catalog = Arc::new(Catalog::from_suites([&suite]));
        let engine = ServiceEngine::start(
            catalog,
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            CycleSql::new(LoopVerifier::Custom(Box::new(SlowVerifier {
                per_verify,
                entails,
            }))),
            config,
        );
        (engine, items)
    }

    #[test]
    fn serves_requests_end_to_end() {
        let (engine, items) = oracle_engine(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        for item in items.iter().take(6) {
            let resp = engine
                .call(ServeRequest {
                    item: Arc::clone(item),
                })
                .unwrap();
            assert_eq!(resp.db_id, item.db_name);
            assert!(!resp.sql.is_empty());
            assert!(resp.iterations >= 1);
        }
        let snap = engine.shutdown();
        assert_eq!(snap.admitted, 6);
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.stages.total.count, 6);
        assert!(
            snap.cache_hits + snap.cache_misses > 0,
            "plans routed via cache"
        );
    }

    #[test]
    fn unknown_database_is_a_typed_error() {
        let (engine, items) = oracle_engine(ServeConfig::default());
        let mut item = (*items[0]).clone();
        item.db_name = "no_such_db".into();
        let err = engine
            .call(ServeRequest {
                item: Arc::new(item),
            })
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownDatabase("no_such_db".into()));
        assert_eq!(engine.shutdown().unknown_db, 1);
    }

    #[test]
    fn shed_policy_rejects_when_queue_is_full() {
        let (engine, items) = slow_engine(
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                policy: AdmissionPolicy::Shed,
                ..ServeConfig::default()
            },
            Duration::from_millis(40),
            true,
        );
        // Burst 10 submissions: 1 in flight + 1 queued absorb the first
        // two; the worker sleeps 40ms per request, so the rest of the burst
        // (microseconds apart) must shed.
        let tickets: Vec<_> = (0..10)
            .map(|i| {
                engine.submit(ServeRequest {
                    item: Arc::clone(&items[i % items.len()]),
                })
            })
            .collect();
        let shed = tickets.iter().filter(|t| t.is_err()).count();
        assert!(shed >= 7, "burst mostly shed, got {shed}");
        for ticket in tickets.into_iter().flatten() {
            assert!(ticket.wait().is_ok());
        }
        let snap = engine.shutdown();
        assert_eq!(snap.shed, shed as u64);
        assert_eq!(snap.admitted, 10 - shed as u64);
        assert_eq!(
            snap.completed, snap.admitted,
            "admitted requests all drained"
        );
    }

    #[test]
    fn block_policy_admits_everything() {
        let (engine, items) = slow_engine(
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                policy: AdmissionPolicy::Block,
                ..ServeConfig::default()
            },
            Duration::from_millis(5),
            true,
        );
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                engine
                    .submit(ServeRequest {
                        item: Arc::clone(&items[i % items.len()]),
                    })
                    .expect("block policy never sheds")
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let snap = engine.shutdown();
        assert_eq!(snap.admitted, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.shed, 0);
    }

    #[test]
    fn deadlines_abandon_slow_requests() {
        // The rejecting verifier keeps the loop walking the beam; the
        // deadline check between iterations abandons it after the first
        // 50ms verify call blows the 10ms budget.
        let (engine, items) = slow_engine(
            ServeConfig {
                workers: 1,
                deadline: Some(Duration::from_millis(10)),
                ..ServeConfig::default()
            },
            Duration::from_millis(50),
            false,
        );
        let err = engine
            .call(ServeRequest {
                item: Arc::clone(&items[0]),
            })
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        let snap = engine.shutdown();
        assert_eq!(snap.timeouts, 1);
        assert_eq!(
            snap.stages.total.count, 0,
            "timed-out requests skip histograms"
        );
    }

    fn memory_tracer() -> (Arc<Tracer>, Arc<cyclesql_obs::MemorySink>) {
        let counters = Arc::new(cyclesql_obs::ObsCounters::default());
        let sink = Arc::new(cyclesql_obs::MemorySink::new(4096, Arc::clone(&counters)));
        let tracer = Arc::new(Tracer::new(
            sink.clone() as Arc<dyn cyclesql_obs::SpanSink>,
            counters,
        ));
        (tracer, sink)
    }

    #[test]
    fn traced_engine_emits_request_span_trees() {
        let suite = quick_suite();
        let items: Vec<Arc<BenchmarkItem>> = suite.dev.iter().cloned().map(Arc::new).collect();
        let catalog = Arc::new(Catalog::from_suites([&suite]));
        let (tracer, sink) = memory_tracer();
        let engine = ServiceEngine::start_traced(
            catalog,
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            CycleSql::new(LoopVerifier::Oracle),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            Arc::clone(&tracer),
            true,
        );
        for item in items.iter().take(4) {
            engine
                .call(ServeRequest {
                    item: Arc::clone(item),
                })
                .unwrap();
        }
        let snap = engine.shutdown();
        assert_eq!(snap.completed, 4);

        let records = sink.records();
        let roots: Vec<_> = records.iter().filter(|r| r.name == "serve").collect();
        assert_eq!(roots.len(), 4, "one root span per request");
        for root in &roots {
            assert!(root.attr("request").is_some());
            assert!(root.attr("db").is_some());
            assert!(root.attr("outcome").is_some());
            assert!(
                root.attr("plan_hits").is_some() && root.attr("plan_misses").is_some(),
                "plan-cache split on the root"
            );
            // Exactly one translate child per request.
            let translates = records
                .iter()
                .filter(|r| r.name == "translate" && r.parent_id == Some(root.span_id))
                .count();
            assert_eq!(translates, 1);
            // At least one candidate iteration, each with an execute stage
            // child carrying the EXPLAIN ANALYZE profile (analyze=true).
            let cycles: Vec<_> = records
                .iter()
                .filter(|r| r.name == "cycle" && r.parent_id == Some(root.span_id))
                .collect();
            assert!(!cycles.is_empty(), "candidate spans under the root");
            let analyzed = records.iter().any(|r| {
                r.name == "execute"
                    && cycles.iter().any(|c| r.parent_id == Some(c.span_id))
                    && r.attr("analyze").is_some()
            });
            assert!(analyzed, "EXPLAIN ANALYZE attached to an execute span");
        }
        // Tracing aggregates into the same histograms the untraced engine
        // fills: the snapshot surface is unchanged.
        assert_eq!(snap.stages.total.count, 4);
    }

    #[test]
    fn shed_requests_trace_an_error_root_span() {
        let suite = quick_suite();
        let items: Vec<Arc<BenchmarkItem>> = suite.dev.iter().cloned().map(Arc::new).collect();
        let catalog = Arc::new(Catalog::from_suites([&suite]));
        let (tracer, sink) = memory_tracer();
        let engine = ServiceEngine::start_traced(
            catalog,
            SimulatedModel::new(ModelProfile::resdsql_3b()),
            CycleSql::new(LoopVerifier::Custom(Box::new(SlowVerifier {
                per_verify: Duration::from_millis(40),
                entails: true,
            }))),
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                policy: AdmissionPolicy::Shed,
                ..ServeConfig::default()
            },
            Arc::clone(&tracer),
            false,
        );
        let tickets: Vec<_> = (0..10)
            .map(|i| {
                engine.submit(ServeRequest {
                    item: Arc::clone(&items[i % items.len()]),
                })
            })
            .collect();
        let shed = tickets.iter().filter(|t| t.is_err()).count();
        assert!(shed > 0, "burst saturated the queue");
        for ticket in tickets.into_iter().flatten() {
            ticket.wait().unwrap();
        }
        engine.shutdown();
        let records = sink.records();
        let shed_roots = records
            .iter()
            .filter(|r| {
                r.name == "serve"
                    && r.error
                    && matches!(
                        r.attr("outcome"),
                        Some(cyclesql_obs::AttrValue::Str(s)) if s == "shed"
                    )
            })
            .count();
        assert_eq!(
            shed_roots, shed,
            "every shed request left an error root span"
        );
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let (engine, items) = slow_engine(
            ServeConfig {
                workers: 2,
                queue_capacity: 16,
                ..ServeConfig::default()
            },
            Duration::from_millis(10),
            true,
        );
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                engine
                    .submit(ServeRequest {
                        item: Arc::clone(&items[i % items.len()]),
                    })
                    .unwrap()
            })
            .collect();
        let snap = engine.shutdown();
        assert_eq!(
            snap.completed, 6,
            "every admitted request served before exit"
        );
        for t in tickets {
            assert!(t.wait().is_ok(), "tickets fulfilled even after shutdown");
        }
    }
}
