/root/repo/target/debug/deps/plan_analyze_golden-d9063a4abd6e87bc.d: tests/plan_analyze_golden.rs Cargo.toml

/root/repo/target/debug/deps/libplan_analyze_golden-d9063a4abd6e87bc.rmeta: tests/plan_analyze_golden.rs Cargo.toml

tests/plan_analyze_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
