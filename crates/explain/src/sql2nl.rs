//! The "simpler" SQL2NL baseline explainer (Section V-A4, Figure 9).
//!
//! This mirrors the paper's comparison feedback generator: it renders the
//! SQL query directly into NL from the query surface alone — *no provenance,
//! no data grounding*. In the paper this role is played by a prompted LLM;
//! here the same role is played by a template renderer over the AST. The
//! resulting premise lacks data-level semantics, which is exactly the
//! deficiency Figure 9 measures.

use crate::nlg::ExplanationFacets;

/// Deterministic "paraphrase looseness": the paper's SQL2NL feedback is an
/// LLM back-translation that often paraphrases literal values rather than
/// quoting them. We model that by omitting roughly half of the literals,
/// chosen by a stable hash of the condition.
fn paraphrased_away(col: &str, value: &str) -> bool {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in col.bytes().chain(value.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h.is_multiple_of(2)
}
use cyclesql_sql::{
    AggFunc, BinOp, ClauseKind, Literal, Query, SetOp, SortOrder, UnitSemantics,
};
use cyclesql_storage::Database;

/// A back-translated (SQL-only) explanation.
#[derive(Debug, Clone)]
pub struct Sql2NlExplanation {
    /// The rendered NL text.
    pub text: String,
    /// Structured digest — note: carries *no* result values or provenance
    /// witnesses, only query-surface semantics.
    pub facets: ExplanationFacets,
}

impl Sql2NlExplanation {
    /// The NLI premise: text plus SQL (no data, unlike CycleSQL's premise).
    pub fn premise(&self, sql: &str) -> String {
        format!("{} | | {}", self.text, sql)
    }
}

/// Renders a query into a direct NL description.
pub fn sql_to_nl(db: &Database, query: &Query) -> Sql2NlExplanation {
    let core = query.leading_select();
    let mut facets = ExplanationFacets { distinct: core.distinct, ..Default::default() };
    let tables: Vec<String> = core.from.tables().iter().map(|t| t.name.clone()).collect();
    facets.join_tables = tables.clone();
    let subject = tables
        .iter()
        .map(|t| {
            db.schema.table(t).map(|s| s.nl_name.clone()).unwrap_or_else(|| t.replace('_', " "))
        })
        .collect::<Vec<_>>()
        .join(" and ");

    let mut selects = Vec::new();
    let mut filters = Vec::new();
    let mut tails = Vec::new();

    for unit in cyclesql_sql::decompose(query) {
        match &unit.semantics {
            UnitSemantics::Aggregate { func, column, .. } => {
                let c = column.as_ref().map(|c| c.column.replace('_', " "));
                facets.agg_funcs.push((*func, c.clone()));
                selects.push(match (func, c) {
                    (AggFunc::Count, None) => "the number of entries".to_string(),
                    (AggFunc::Count, Some(c)) => format!("the number of {c}"),
                    (f, Some(c)) => format!("the {} of {c}", agg_word(*f)),
                    (f, None) => format!("the {} value", agg_word(*f)),
                });
            }
            UnitSemantics::Projection { column } => {
                let c = column.column.replace('_', " ");
                facets.projected_columns.push(c.clone());
                selects.push(format!("the {c}"));
            }
            UnitSemantics::ProjectAll { .. } => {
                facets.projected_columns.push("all columns".into());
                selects.push("all information".to_string());
            }
            UnitSemantics::Comparison { column, op, value } => {
                if unit.clause == ClauseKind::Join {
                    continue;
                }
                let c = column.column.replace('_', " ");
                let v = lit(value);
                if paraphrased_away(&c, &v) {
                    // The back-translation paraphrases the value instead of
                    // quoting it — the condition loses its literal.
                    filters.push(format!("there is a condition on the {c}"));
                } else {
                    facets.comparisons.push((c.clone(), *op, v.clone()));
                    if *op == BinOp::NotEq {
                        facets.negations += 1;
                    }
                    filters.push(format!("the {c} is {} {v}", op_word(*op)));
                }
            }
            UnitSemantics::Like { column, pattern, negated } => {
                facets.like_patterns.push(pattern.clone());
                if *negated {
                    facets.negations += 1;
                }
                filters.push(format!(
                    "the {} {} '{}'",
                    column.column.replace('_', " "),
                    if *negated { "does not contain" } else { "contains" },
                    pattern.trim_matches('%')
                ));
            }
            UnitSemantics::Between { column, low, high, negated } => {
                let c = column.column.replace('_', " ");
                facets.comparisons.push((c.clone(), BinOp::GtEq, lit(low)));
                facets.comparisons.push((c.clone(), BinOp::LtEq, lit(high)));
                if *negated {
                    facets.negations += 1;
                }
                filters.push(format!("the {c} is between {} and {}", lit(low), lit(high)));
            }
            UnitSemantics::InValues { column, values, negated } => {
                let c = column.column.replace('_', " ");
                let vals: Vec<String> = values.iter().map(lit).collect();
                for v in &vals {
                    facets.comparisons.push((
                        c.clone(),
                        if *negated { BinOp::NotEq } else { BinOp::Eq },
                        v.clone(),
                    ));
                }
                if *negated {
                    facets.negations += 1;
                }
                filters.push(format!("the {c} is one of {}", vals.join(", ")));
            }
            UnitSemantics::SubqueryPredicate { column, negated, .. } => {
                if *negated {
                    facets.negations += 1;
                }
                let lead = column
                    .as_ref()
                    .map(|c| c.column.replace('_', " "))
                    .unwrap_or_else(|| "the entry".to_string());
                filters.push(format!(
                    "the {lead} {} a nested selection",
                    if *negated { "is excluded by" } else { "matches" }
                ));
            }
            UnitSemantics::HavingCondition { func, op, value, .. } => {
                let v = lit(value);
                facets.having.push((*func, *op, v.clone()));
                filters.push(format!(
                    "groups where the {} is {} {v}",
                    func.map(|f| f.name()).unwrap_or("value"),
                    op_word(*op)
                ));
            }
            UnitSemantics::GroupKey { column } => {
                let c = column.column.replace('_', " ");
                facets.group_keys.push(c.clone());
                filters.push(format!("for each {c}"));
            }
            UnitSemantics::OrderKey { agg, column, order, .. } => {
                let key = column
                    .as_ref()
                    .map(|c| c.column.replace('_', " "))
                    .unwrap_or_else(|| "the value".to_string());
                facets.order = Some((key.clone(), *order, *agg));
                tails.push(format!(
                    "ordered by {key} {}",
                    if *order == SortOrder::Desc { "descending" } else { "ascending" }
                ));
            }
            UnitSemantics::RowLimit { n } => {
                facets.limit = Some(*n);
                tails.push(format!("limited to {n}"));
            }
            UnitSemantics::SetOperation { op } => {
                facets.set_op = Some(*op);
                tails.push(
                    match op {
                        SetOp::Union => "taking the union of both parts",
                        SetOp::Intersect => "taking rows in both parts",
                        SetOp::Except => "removing rows in the second part",
                    }
                    .to_string(),
                );
            }
            _ => {}
        }
    }

    let mut text = format!(
        "The query retrieves {} from {subject}",
        if selects.is_empty() { "rows".to_string() } else { selects.join(" and ") },
    );
    if !filters.is_empty() {
        text.push_str(&format!(" where {}", filters.join(" and ")));
    }
    if !tails.is_empty() {
        text.push_str(&format!(", {}", tails.join(", ")));
    }
    text.push('.');

    Sql2NlExplanation { text, facets }
}

fn agg_word(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "total",
        AggFunc::Avg => "average",
        AggFunc::Min => "minimum",
        AggFunc::Max => "maximum",
    }
}

fn op_word(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "equal to",
        BinOp::NotEq => "different from",
        BinOp::Lt => "below",
        BinOp::LtEq => "at most",
        BinOp::Gt => "above",
        BinOp::GtEq => "at least",
        _ => "related to",
    }
}

fn lit(l: &Literal) -> String {
    match l {
        Literal::Str(s) => s.clone(),
        Literal::Int(n) => n.to_string(),
        Literal::Float(x) => x.to_string(),
        Literal::Bool(b) => if *b { "T" } else { "F" }.to_string(),
        Literal::Null => "NULL".to_string(),
    }
}
