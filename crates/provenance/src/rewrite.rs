//! Query rewriting for why-provenance (Section IV-A of the paper).
//!
//! Three heuristic rules transform an executed query into one whose result
//! *is* the provenance of a chosen output row:
//!
//! - **Rule 1 (Result Transformation)** — the target result row's values are
//!   turned into `WHERE` equality conditions on their projected columns,
//!   pinning the provenance to that row. Skipped for star projections and
//!   aggregate columns.
//! - **Rule 2 (Projection Enhancement)** — every column referenced anywhere
//!   in the query, plus the primary keys of referenced tables, becomes a
//!   projection column, so the provenance carries all query-relevant data.
//! - **Rule 3 (Aggregation Deconstruction)** — aggregate functions and
//!   `GROUP BY` collapse rows and hide lineage, so they are removed;
//!   aggregate `HAVING` conjuncts are dropped (their semantics are
//!   re-attached later during enrichment), non-aggregate ones move to
//!   `WHERE`. `ORDER BY`/`LIMIT` are dropped for the same reason.

use cyclesql_sql::{
    ColumnRef, Expr, Literal, Query, QueryBody, SelectCore, SelectItem, SortOrder,
};
use cyclesql_storage::{Database, Value};

/// The rewriting of one select core.
#[derive(Debug, Clone)]
pub struct RewrittenCore {
    /// The provenance query for this core (a full query so it can execute
    /// standalone).
    pub query: Query,
    /// Columns projected by the rewrite, qualified as `(visible_table, column)`.
    pub projected: Vec<ColumnRef>,
}

/// Rewrites every select core of `original` for the given target result row.
///
/// `result_columns` / `result_row` come from executing the original query.
/// Set-operation queries yield one rewritten core per branch; their
/// provenance is unioned by the caller.
pub fn rewrite_for_provenance(
    db: &Database,
    original: &Query,
    result_columns: &[String],
    result_row: &[Value],
) -> Vec<RewrittenCore> {
    let cores = original.body.select_cores();
    cores
        .into_iter()
        .map(|core| rewrite_core(db, original, core, result_columns, result_row))
        .collect()
}

fn rewrite_core(
    db: &Database,
    original: &Query,
    core: &SelectCore,
    result_columns: &[String],
    result_row: &[Value],
) -> RewrittenCore {
    let mut new_core = core.clone();

    // ---- Rule 1: result transformation --------------------------------
    let mut result_conditions: Vec<Expr> = Vec::new();
    let has_star = core
        .projections
        .iter()
        .any(|p| matches!(p, SelectItem::Star | SelectItem::QualifiedStar(_)));
    if !has_star {
        for (i, item) in core.projections.iter().enumerate() {
            let (Some(_), Some(value)) = (result_columns.get(i), result_row.get(i)) else {
                continue;
            };
            if let SelectItem::Expr { expr: Expr::Column(c), .. } = item {
                if let Some(lit) = value_to_literal(value) {
                    result_conditions.push(Expr::binary(
                        cyclesql_sql::BinOp::Eq,
                        Expr::Column(c.clone()),
                        Expr::Literal(lit),
                    ));
                }
                // NULL result values can't be pinned with equality; skip.
                let _ = c;
            }
        }
    }

    // ---- Rule 3: aggregation deconstruction ----------------------------
    // (Applied before Rule 2 so the enhanced projection list reflects the
    // deconstructed query.)
    new_core.group_by.clear();
    let mut having_moved: Vec<Expr> = Vec::new();
    if let Some(h) = new_core.having.take() {
        for conj in h.conjuncts() {
            if !conj.contains_aggregate() {
                having_moved.push(conj.clone());
            }
        }
    }
    new_core.distinct = false;

    // ---- Rule 2: projection enhancement --------------------------------
    let mut projected: Vec<ColumnRef> = Vec::new();
    let push_col = |c: &ColumnRef, projected: &mut Vec<ColumnRef>| {
        if !projected.iter().any(|p| p == c) {
            projected.push(c.clone());
        }
    };
    // Columns from the original projections (aggregate arguments included).
    for item in &core.projections {
        match item {
            SelectItem::Expr { expr, .. } => {
                for c in expr.columns() {
                    push_col(c, &mut projected);
                }
            }
            SelectItem::Star | SelectItem::QualifiedStar(_) => {}
        }
    }
    // Columns from join conditions, WHERE, GROUP BY, HAVING, ORDER BY.
    for j in &core.from.joins {
        if let Some(on) = &j.on {
            for c in on.columns() {
                push_col(c, &mut projected);
            }
        }
    }
    if let Some(w) = &core.where_clause {
        for c in w.columns() {
            push_col(c, &mut projected);
        }
    }
    for g in &core.group_by {
        for c in g.columns() {
            push_col(c, &mut projected);
        }
    }
    if let Some(h) = &core.having {
        for c in h.columns() {
            push_col(c, &mut projected);
        }
    }
    // Primary keys of every referenced table.
    for tref in core.from.tables() {
        if let Some(schema) = db.schema.table(&tref.name) {
            for pk in schema.primary_key_names() {
                let qualifier = tref.visible_name().to_string();
                push_col(&ColumnRef { table: Some(qualifier), column: pk.to_string() }, &mut projected);
            }
        }
    }
    // A star projection asks for everything: project all columns of every
    // referenced table (the retrieval-all fallback also covers queries where
    // nothing else was collected).
    if has_star || projected.is_empty() {
        for tref in core.from.tables() {
            if let Some(schema) = db.schema.table(&tref.name) {
                for col in &schema.columns {
                    push_col(
                        &ColumnRef {
                            table: Some(tref.visible_name().to_string()),
                            column: col.name.clone(),
                        },
                        &mut projected,
                    );
                }
            }
        }
    }

    new_core.projections = projected
        .iter()
        .cloned()
        .map(|c| SelectItem::Expr { expr: Expr::Column(c), alias: None })
        .collect();

    // Attach Rule-1 conditions and relocated HAVING conjuncts to WHERE.
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = new_core.where_clause.take() {
        conjuncts.extend(w.conjuncts().into_iter().cloned());
    }
    conjuncts.extend(result_conditions);
    conjuncts.extend(having_moved);
    new_core.where_clause = Expr::from_conjuncts(conjuncts);

    // Carry the CTEs over unchanged: the rewritten core may reference them
    // in FROM, and a `WITH` body is its own query — the rules apply to the
    // outer select, not to the named tables it draws from.
    let query = Query {
        ctes: original.ctes.clone(),
        body: QueryBody::Select(new_core),
        order_by: Vec::new(),
        limit: None,
    };
    let _ = SortOrder::Asc; // rule 3 drops ordering; keep the import honest
    RewrittenCore { query, projected }
}

fn value_to_literal(v: &Value) -> Option<Literal> {
    match v {
        Value::Null => None,
        Value::Int(n) => Some(Literal::Int(*n)),
        Value::Float(x) => Some(Literal::Float(*x)),
        Value::Str(s) => Some(Literal::Str(s.clone())),
        Value::Bool(b) => Some(Literal::Bool(*b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesql_sql::{parse, to_sql};
    use cyclesql_storage::{ColumnDef, DataType, DatabaseSchema, TableSchema};

    fn flight_db() -> Database {
        let mut schema = DatabaseSchema::new("flight_1");
        schema.add_table(TableSchema::new(
            "aircraft",
            vec![
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ],
        ));
        schema.add_table(TableSchema::new(
            "flight",
            vec![
                ColumnDef::new("flno", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
            ],
        ));
        schema.add_foreign_key("flight", "aid", "aircraft", "aid");
        Database::new(schema)
    }

    #[test]
    fn aggregation_deconstruction_strips_count_and_adds_pk() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid \
             WHERE T2.name = 'Airbus A340-300'",
        )
        .unwrap();
        let rewritten = rewrite_for_provenance(&db, &q, &["count(*)".into()], &[Value::Int(2)]);
        assert_eq!(rewritten.len(), 1);
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("count"), "aggregate not removed: {sql}");
        assert!(sql.contains("t2.name"), "where columns projected: {sql}");
        assert!(sql.contains("t1.flno"), "pk projected: {sql}");
        assert!(sql.contains("WHERE"), "original filter kept: {sql}");
    }

    #[test]
    fn result_transformation_pins_projected_column() {
        let db = flight_db();
        let q = parse("SELECT name FROM aircraft WHERE aid > 0").unwrap();
        let rewritten = rewrite_for_provenance(
            &db,
            &q,
            &["name".into()],
            &[Value::from("Airbus A340-300")],
        );
        let sql = to_sql(&rewritten[0].query);
        assert!(
            sql.contains("name = 'Airbus A340-300'"),
            "result condition missing: {sql}"
        );
    }

    #[test]
    fn star_projection_skips_rule1() {
        let db = flight_db();
        let q = parse("SELECT * FROM aircraft").unwrap();
        let rewritten = rewrite_for_provenance(
            &db,
            &q,
            &["aid".into(), "name".into()],
            &[Value::Int(1), Value::from("X")],
        );
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("WHERE"), "rule 1 should be skipped: {sql}");
        // Fallback projects all columns.
        assert!(sql.contains("aid") && sql.contains("name"));
    }

    #[test]
    fn group_by_removed_and_key_pinned() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*), T2.name FROM flight AS T1 JOIN aircraft AS T2 \
             ON T1.aid = T2.aid GROUP BY T2.name HAVING count(*) > 1",
        )
        .unwrap();
        let rewritten = rewrite_for_provenance(
            &db,
            &q,
            &["count(*)".into(), "T2.name".into()],
            &[Value::Int(2), Value::from("Airbus A340-300")],
        );
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("GROUP BY"), "{sql}");
        assert!(!sql.contains("HAVING"), "{sql}");
        assert!(!sql.contains("count"), "{sql}");
        assert!(sql.contains("t2.name = 'Airbus A340-300'"), "group key pinned: {sql}");
    }

    #[test]
    fn order_and_limit_dropped() {
        let db = flight_db();
        let q = parse("SELECT name FROM aircraft ORDER BY aid DESC LIMIT 1").unwrap();
        let rewritten =
            rewrite_for_provenance(&db, &q, &["name".into()], &[Value::from("X")]);
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("ORDER BY") && !sql.contains("LIMIT"), "{sql}");
    }

    #[test]
    fn set_op_yields_one_rewrite_per_branch() {
        let db = flight_db();
        let q = parse(
            "SELECT name FROM aircraft WHERE aid = 1 \
             INTERSECT SELECT name FROM aircraft WHERE aid = 3",
        )
        .unwrap();
        let rewritten =
            rewrite_for_provenance(&db, &q, &["name".into()], &[Value::from("X")]);
        assert_eq!(rewritten.len(), 2);
        for rw in &rewritten {
            let sql = to_sql(&rw.query);
            assert!(sql.contains("name = 'X'"), "{sql}");
        }
    }

    #[test]
    fn null_result_value_not_pinned() {
        let db = flight_db();
        let q = parse("SELECT name FROM aircraft").unwrap();
        let rewritten = rewrite_for_provenance(&db, &q, &["name".into()], &[Value::Null]);
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("WHERE"), "{sql}");
    }

    #[test]
    fn non_aggregate_having_moves_to_where() {
        let db = flight_db();
        let q = parse(
            "SELECT count(*), name FROM aircraft GROUP BY name HAVING name != 'X' AND count(*) > 1",
        )
        .unwrap();
        let rewritten = rewrite_for_provenance(
            &db,
            &q,
            &["count(*)".into(), "name".into()],
            &[Value::Int(2), Value::from("Y")],
        );
        let sql = to_sql(&rewritten[0].query);
        assert!(sql.contains("name != 'X'"), "non-aggregate HAVING kept: {sql}");
        assert!(!sql.contains("count"), "aggregate HAVING dropped: {sql}");
    }

    #[test]
    fn distinct_removed_by_rule3() {
        let db = flight_db();
        let q = parse("SELECT DISTINCT name FROM aircraft").unwrap();
        let rewritten =
            rewrite_for_provenance(&db, &q, &["name".into()], &[Value::from("X")]);
        let sql = to_sql(&rewritten[0].query);
        assert!(!sql.contains("DISTINCT"), "{sql}");
    }
}
