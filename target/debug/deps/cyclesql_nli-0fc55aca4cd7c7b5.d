/root/repo/target/debug/deps/cyclesql_nli-0fc55aca4cd7c7b5.d: crates/nli/src/lib.rs crates/nli/src/features.rs crates/nli/src/loss.rs crates/nli/src/mlp.rs crates/nli/src/model.rs crates/nli/src/verifier.rs Cargo.toml

/root/repo/target/debug/deps/libcyclesql_nli-0fc55aca4cd7c7b5.rmeta: crates/nli/src/lib.rs crates/nli/src/features.rs crates/nli/src/loss.rs crates/nli/src/mlp.rs crates/nli/src/model.rs crates/nli/src/verifier.rs Cargo.toml

crates/nli/src/lib.rs:
crates/nli/src/features.rs:
crates/nli/src/loss.rs:
crates/nli/src/mlp.rs:
crates/nli/src/model.rs:
crates/nli/src/verifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
