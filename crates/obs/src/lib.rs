//! # cyclesql-obs
//!
//! Request-scoped observability for the CycleSQL stack: a low-overhead
//! hierarchical span/event system with pluggable sinks.
//!
//! The serving engine's aggregate metrics (`MetricsSnapshot`) answer "how
//! is the fleet doing"; this crate answers "why was *this* request slow or
//! rejected" — the same per-instance-vs-aggregate gap that separates the
//! paper's provenance-backed explanations from whole-benchmark accuracy
//! scores.
//!
//! Pieces:
//!
//! - [`Tracer`] / [`Span`] — monotonic-timestamped hierarchical spans with
//!   typed key/value attributes. Finishing is **drop-safe**: a span that
//!   goes out of scope during a panic, an early `return`, or a deadline
//!   abort still reaches the sink (with whatever attributes it carried).
//! - [`SpanSink`] — where finished spans go. [`MemorySink`] is a bounded
//!   ring buffer for tests, [`JsonlSink`] appends one JSON object per span
//!   for offline analysis, and [`SamplingSink`] wraps either with a 1-in-N
//!   head-count policy that *always* keeps error traces (shed, deadline,
//!   failed stages), buffering a trace's spans until its root finishes.
//! - [`SpanCtx`] — a `Copy` handle threaded through the pipeline. When no
//!   tracer is installed the context is empty and every call is a branch
//!   on a `None`: the traced-off hot path allocates nothing and emits
//!   nothing (pinned by [`ObsCounters`] reading zero).
//! - [`trace`] — wire trace-context propagation: W3C `traceparent`
//!   parsing into the tracer's 64-bit ids, and the hex spelling used by
//!   response headers and debug endpoints.
//! - [`window`] — rolling time-windowed telemetry: per-stage rings of
//!   fixed-width buckets (rate, error rate, log₂-µs latency histogram)
//!   whose histogram buckets carry **exemplars** (trace id + SQL digest
//!   of a recent request), deterministic under an injected clock.
//! - [`flame`] — text flamegraphs and per-stage summaries rebuilt from
//!   finished spans, shared by the live `/v1/debug/flame` endpoint and
//!   the offline `trace_report` tool.
//!
//! ```
//! use cyclesql_obs::{MemorySink, ObsCounters, Tracer};
//! use std::sync::Arc;
//!
//! let counters = Arc::new(ObsCounters::default());
//! let sink = Arc::new(MemorySink::new(128, Arc::clone(&counters)));
//! let tracer = Tracer::new(sink.clone(), Arc::clone(&counters));
//! {
//!     let mut root = tracer.root("serve");
//!     root.set("db", "concert_singer");
//!     let child = root.child("execute");
//!     child.finish();
//! } // root finishes on drop
//! let records = sink.records();
//! assert_eq!(records.len(), 2);
//! assert_eq!(counters.snapshot().spans_emitted, 2);
//! ```

#![warn(missing_docs)]

pub mod flame;
pub mod sample;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

pub use flame::{render_flame, stage_summary, FlameSpan};
pub use sample::{SamplePolicy, SamplingSink};
pub use sink::{parse_jsonl_line, JsonlSink, MemorySink, ParsedSpan, SpanSink};
pub use span::{
    push_json_str, Attr, AttrValue, ObsCounters, ObsCountersSnapshot, SharedSpan, Span, SpanCtx,
    SpanRecord, Tracer,
};
pub use trace::{format_trace_id, parse_trace_id, parse_traceparent};
pub use window::{
    latency_bucket, latency_bucket_upper_us, Exemplar, Window, WindowConfig, WindowSet,
    WindowSnapshot, LATENCY_BUCKETS,
};
